"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, all_of, any_of


def test_timeout_advances_clock():
    sim = Simulator()
    done = sim.timeout(100)
    sim.run(done)
    assert sim.now == 100


def test_timeout_value_passes_through():
    sim = Simulator()
    done = sim.timeout(5, value="payload")
    assert sim.run(done) == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_zero_timeout_fires_at_current_time():
    sim = Simulator()
    done = sim.timeout(0)
    sim.run(done)
    assert sim.now == 0


def test_process_sequences_timeouts():
    sim = Simulator()
    trace = []

    def body():
        yield sim.timeout(10)
        trace.append(sim.now)
        yield sim.timeout(15)
        trace.append(sim.now)
        return "done"

    proc = sim.process(body())
    assert sim.run(proc) == "done"
    assert trace == [10, 25]


def test_process_return_value_none_by_default():
    sim = Simulator()

    def body():
        yield sim.timeout(1)

    assert sim.run(sim.process(body())) is None


def test_same_tick_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def make(tag):
        def body():
            yield sim.timeout(10)
            order.append(tag)

        return body

    for tag in ("a", "b", "c"):
        sim.process(make(tag)())
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append((sim.now, value))

    def opener():
        yield sim.timeout(42)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert seen == [(42, "open")]


def test_event_succeed_twice_is_an_error():
    sim = Simulator()
    gate = sim.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_event_fail_propagates_into_process():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    gate.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_process_exception_fails_its_completion_event():
    sim = Simulator()

    def body():
        yield sim.timeout(1)
        raise ValueError("inside")

    proc = sim.process(body())
    with pytest.raises(ValueError, match="inside"):
        sim.run(proc)


def test_yield_non_event_fails_process():
    sim = Simulator()

    def body():
        yield 123

    proc = sim.process(body())
    with pytest.raises(SimulationError):
        sim.run(proc)


def test_yield_event_from_other_simulator_fails():
    sim_a = Simulator()
    sim_b = Simulator()
    foreign = sim_b.timeout(1)

    def body():
        yield foreign

    proc = sim_a.process(body())
    with pytest.raises(SimulationError):
        sim_a.run(proc)


def test_waiting_on_already_fired_event_resumes_immediately():
    sim = Simulator()
    gate = sim.event()
    gate.succeed("early")
    sim.run()  # process gate callbacks
    assert gate.fired

    def body():
        value = yield gate
        return (sim.now, value)

    result = sim.run(sim.process(body()))
    assert result == (0, "early")


def test_process_is_awaitable_by_other_process():
    sim = Simulator()

    def inner():
        yield sim.timeout(7)
        return 99

    def outer():
        value = yield sim.process(inner())
        return (sim.now, value)

    assert sim.run(sim.process(outer())) == (7, 99)


def test_all_of_waits_for_slowest_and_collects_values():
    sim = Simulator()
    a = sim.timeout(5, value="a")
    b = sim.timeout(9, value="b")

    def body():
        values = yield all_of(sim, [a, b])
        return (sim.now, values)

    assert sim.run(sim.process(body())) == (9, ["a", "b"])


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()

    def body():
        values = yield all_of(sim, [])
        return values

    assert sim.run(sim.process(body())) == []


def test_any_of_fires_on_first():
    sim = Simulator()
    a = sim.timeout(5, value="fast")
    b = sim.timeout(9, value="slow")

    def body():
        value = yield any_of(sim, [a, b])
        return (sim.now, value)

    assert sim.run(sim.process(body())) == (5, "fast")


def test_all_of_fails_if_any_fails():
    sim = Simulator()
    gate = sim.event()
    ok = sim.timeout(3)

    def body():
        yield all_of(sim, [gate, ok])

    proc = sim.process(body())
    gate.fail(RuntimeError("nope"))
    with pytest.raises(RuntimeError, match="nope"):
        sim.run(proc)


def test_all_of_with_already_fired_events():
    sim = Simulator()
    a = sim.timeout(1, value=1)
    b = sim.timeout(2, value=2)
    sim.run()

    def body():
        values = yield all_of(sim, [a, b])
        return values

    assert sim.run(sim.process(body())) == [1, 2]


def test_delayed_chains_fixed_latency_after_event():
    sim = Simulator()
    base = sim.event()
    chained = sim.delayed(base, 30)
    times = []

    def body():
        value = yield chained
        times.append((sim.now, value))

    def opener():
        yield sim.timeout(12)
        base.succeed("v")

    sim.process(body())
    sim.process(opener())
    sim.run()
    assert times == [(42, "v")]


def test_delayed_zero_latency():
    sim = Simulator()
    base = sim.event()
    chained = sim.delayed(base, 0)

    def opener():
        yield sim.timeout(8)
        base.succeed(5)

    sim.process(opener())
    sim.run(chained)
    assert sim.now == 8 and chained.value == 5


def test_delayed_propagates_failure():
    sim = Simulator()
    base = sim.event()
    chained = sim.delayed(base, 10)
    base.fail(RuntimeError("bad"))
    with pytest.raises(RuntimeError, match="bad"):
        sim.run(chained)


def test_run_until_time_stops_clock_at_horizon():
    sim = Simulator()
    sim.timeout(50)
    sim.timeout(200)
    sim.run(until=100)
    assert sim.now == 100
    assert sim.pending_events == 1


def test_run_until_untriggered_event_with_empty_queue_raises():
    sim = Simulator()
    gate = sim.event()
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(gate)


def test_clock_never_goes_backwards():
    sim = Simulator()
    stamps = []

    def body(delay):
        yield sim.timeout(delay)
        stamps.append(sim.now)

    for delay in (30, 10, 20, 10):
        sim.process(body(delay))
    sim.run()
    assert stamps == sorted(stamps)


def test_fired_versus_triggered_semantics():
    sim = Simulator()
    timeout = sim.timeout(10)
    # A timeout's outcome is predetermined (triggered), but it has not
    # yet happened in simulated time (not fired).
    assert timeout.triggered
    assert not timeout.fired
    sim.run()
    assert timeout.fired


def test_fail_requires_exception_instance():
    sim = Simulator()
    gate = sim.event()
    with pytest.raises(SimulationError):
        gate.fail("not an exception")  # type: ignore[arg-type]


def test_nested_processes_compose():
    sim = Simulator()

    def leaf(n):
        yield sim.timeout(n)
        return n

    def branch():
        total = 0
        for n in (3, 4):
            total += yield sim.process(leaf(n))
        return total

    assert sim.run(sim.process(branch())) == 7
    assert sim.now == 7


def test_event_value_before_trigger_raises():
    sim = Simulator()
    gate = sim.event()
    with pytest.raises(SimulationError):
        _ = gate.value
