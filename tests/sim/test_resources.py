"""Unit tests for Resource and Store primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Resource, Simulator, Store


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    a = res.acquire()
    b = res.acquire()
    c = res.acquire()
    sim.run()
    assert a.fired and b.fired
    assert not c.fired
    assert res.in_use == 2
    assert res.queued == 1


def test_resource_release_unblocks_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    grants = []

    def user(tag, hold):
        yield res.acquire()
        grants.append((tag, sim.now))
        yield sim.timeout(hold)
        res.release()

    sim.process(user("a", 10))
    sim.process(user("b", 10))
    sim.process(user("c", 10))
    sim.run()
    assert grants == [("a", 0), ("b", 10), ("c", 20)]
    assert res.in_use == 0


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_release_when_idle_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_try_acquire_never_queues():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    assert res.try_acquire()
    assert not res.try_acquire()
    assert res.queued == 0
    res.release()
    assert res.try_acquire()


def test_resource_max_in_use_statistic():
    sim = Simulator()
    res = Resource(sim, capacity=5)

    def user(hold):
        yield res.acquire()
        yield sim.timeout(hold)
        res.release()

    for _ in range(3):
        sim.process(user(10))
    sim.run()
    assert res.max_in_use == 3
    assert res.total_acquires == 3


def test_resource_average_occupancy():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user():
        yield res.acquire()
        yield sim.timeout(50)
        res.release()
        yield sim.timeout(50)

    sim.process(user())
    sim.run()
    # Held for 50 of 100 ticks -> average 0.5.
    assert res.average_occupancy() == pytest.approx(0.5)


def test_resource_handoff_keeps_occupancy_at_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(hold):
        yield res.acquire()
        yield sim.timeout(hold)
        res.release()

    sim.process(user(10))
    sim.process(user(10))
    sim.run()
    assert res.max_in_use == 1
    assert res.in_use == 0


def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    received = []

    def producer():
        for item in ("x", "y", "z"):
            yield store.put(item)
            yield sim.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append((sim.now, item))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert [item for _, item in received] == ["x", "y", "z"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(25)
        yield store.put("late")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(25, "late")]


def test_bounded_store_blocks_put_at_capacity():
    sim = Simulator()
    store = Store(sim, capacity=1)
    timeline = []

    def producer():
        yield store.put("a")
        timeline.append(("a", sim.now))
        yield store.put("b")
        timeline.append(("b", sim.now))

    def consumer():
        yield sim.timeout(40)
        yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert timeline == [("a", 0), ("b", 40)]


def test_store_direct_handoff_to_waiting_getter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    sim.process(consumer())

    def producer():
        yield sim.timeout(5)
        yield store.put("direct")

    sim.process(producer())
    sim.run()
    assert got == ["direct"]
    assert len(store) == 0


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_store_len_and_max_level():
    sim = Simulator()
    store = Store(sim)

    def producer():
        for i in range(4):
            yield store.put(i)

    sim.process(producer())
    sim.run()
    assert len(store) == 4
    assert store.max_level == 4
    assert store.total_puts == 4


def test_store_drain_helper():
    sim = Simulator()
    store = Store(sim)

    def producer():
        yield store.put(11)

    def consumer():
        item = yield from store.drain()
        return item

    sim.process(producer())
    assert sim.run(sim.process(consumer())) == 11


def test_average_occupancy_is_side_effect_free():
    """Regression: the query used to flush ``_account()``, so probing it
    mid-run changed the accounting timeline.  It must be pure: same
    answer on repeated calls, and no effect on later statistics."""
    sim = Simulator()
    probed = Resource(sim, capacity=2, name="probed")
    control = Resource(sim, capacity=2, name="control")

    def worker(resource, probe):
        yield resource.acquire()
        yield sim.timeout(100)
        if probe:
            first = resource.average_occupancy()
            assert resource.average_occupancy() == first
        yield sim.timeout(100)
        resource.release()

    sim.process(worker(probed, probe=True))
    sim.process(worker(control, probe=False))
    sim.run()
    assert probed._occupancy_integral == control._occupancy_integral
    assert probed._last_change == control._last_change
    assert probed.average_occupancy() == control.average_occupancy()
