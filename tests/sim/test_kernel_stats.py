"""Tests of the kernel's observability layer: per-simulator counters
and the cross-simulator :func:`collect_kernel_stats` collector."""

from repro.sim import Simulator, Store, collect_kernel_stats


def _producer_consumer(sim, items=100):
    store = Store(sim, capacity=4)

    def producer():
        for i in range(items):
            yield store.put(i)

    def consumer():
        for _ in range(items):
            yield store.get()

    sim.process(producer())
    sim.process(consumer())


def test_counters_track_a_pure_fast_path_run():
    """A zero-delay workload never touches the heap: every schedule is a
    run-queue bypass, and every fired event was scheduled."""
    sim = Simulator()
    _producer_consumer(sim)
    sim.run()
    stats = sim.kernel_stats()
    assert stats["heap_pushes"] == 0
    assert stats["heap_pops"] == 0
    assert stats["events_fired"] > 0
    assert stats["runq_bypasses"] >= stats["events_fired"]
    assert stats["processes_spawned"] == 2
    assert stats["process_resumes"] > 0
    assert stats["pending_events"] == 0


def test_counters_track_heap_traffic():
    sim = Simulator()

    def sleeper():
        for _ in range(5):
            yield sim.timeout(10)

    sim.process(sleeper())
    sim.run()
    stats = sim.kernel_stats()
    assert stats["heap_pushes"] == 5
    assert stats["heap_pops"] == 5
    assert sim.now == 50


def test_fired_events_equal_bypasses_plus_pops_for_completed_runs():
    """Conservation law behind the derived bypass counter: once a run
    drains, everything scheduled has fired, minus process bootstraps
    (which pass through the run queue without firing an event)."""
    sim = Simulator()
    _producer_consumer(sim)

    def sleeper():
        yield sim.timeout(7)

    sim.process(sleeper())
    sim.run()
    stats = sim.kernel_stats()
    assert (
        stats["events_fired"] + stats["processes_spawned"]
        == stats["runq_bypasses"] + stats["heap_pops"]
    )


def test_collector_aggregates_across_simulators():
    with collect_kernel_stats() as kernel:
        for _ in range(3):
            sim = Simulator()
            _producer_consumer(sim, items=10)
            sim.run()
        single = sim.kernel_stats()
    stats = kernel.stats()
    assert stats["simulators"] == 3
    assert stats["events_fired"] == 3 * single["events_fired"]
    assert 0.0 < kernel.bypass_ratio <= 1.0


def test_collector_only_sees_simulators_built_inside_its_block():
    outside = Simulator()
    _producer_consumer(outside, items=5)
    outside.run()
    with collect_kernel_stats() as kernel:
        inside = Simulator()
        _producer_consumer(inside, items=5)
        inside.run()
    assert kernel.stats()["simulators"] == 1
    assert kernel.stats()["events_fired"] == inside.kernel_stats()["events_fired"]


def test_empty_collector_reports_zero_ratio():
    with collect_kernel_stats() as kernel:
        pass
    assert kernel.stats()["simulators"] == 0
    assert kernel.bypass_ratio == 0.0
