"""Edge-case tests for the simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator, all_of, any_of


def test_any_of_propagates_failure_of_first_event():
    sim = Simulator()
    bad = sim.event()
    slow = sim.timeout(100)

    def body():
        yield any_of(sim, [bad, slow])

    proc = sim.process(body())
    bad.fail(RuntimeError("early failure"))
    with pytest.raises(RuntimeError, match="early failure"):
        sim.run(proc)


def test_any_of_success_beats_later_failure():
    sim = Simulator()
    fast = sim.timeout(5, value="ok")
    bad = sim.event()

    def body():
        value = yield any_of(sim, [fast, bad])
        return value

    proc = sim.process(body())

    def failer():
        yield sim.timeout(50)
        bad.fail(RuntimeError("too late"))

    sim.process(failer())
    assert sim.run(proc) == "ok"
    # Drain the rest; the late failure must not crash anything.
    sim.run()


def test_process_awaiting_failed_process_sees_the_exception():
    sim = Simulator()

    def failing():
        yield sim.timeout(3)
        raise ValueError("inner exploded")

    def outer():
        try:
            yield sim.process(failing())
        except ValueError as exc:
            return f"caught: {exc}"

    assert sim.run(sim.process(outer())) == "caught: inner exploded"


def test_unobserved_process_failure_escalates():
    sim = Simulator()

    def failing():
        yield sim.timeout(1)
        raise ValueError("nobody is watching")

    sim.process(failing())
    with pytest.raises(ValueError, match="nobody is watching"):
        sim.run()


def test_condition_over_mixed_simulators_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        all_of(sim_a, [sim_a.timeout(1), sim_b.timeout(1)])


def test_nested_all_of_composition():
    sim = Simulator()
    inner = all_of(sim, [sim.timeout(3, value=1), sim.timeout(5, value=2)])
    outer = all_of(sim, [inner, sim.timeout(10, value=3)])

    def body():
        values = yield outer
        return values

    assert sim.run(sim.process(body())) == [[1, 2], 3]
    assert sim.now == 10


def test_zero_delay_chain_resumes_same_tick_in_order():
    sim = Simulator()
    order = []

    def hopper(tag, count):
        for _ in range(count):
            yield sim.timeout(0)
        order.append(tag)

    sim.process(hopper("short", 1))
    sim.process(hopper("long", 3))
    sim.run()
    assert sim.now == 0
    assert order == ["short", "long"]


def test_run_until_event_that_already_fired_returns_immediately():
    sim = Simulator()
    done = sim.timeout(10, value="v")
    sim.run()
    assert sim.run(done) == "v"
    assert sim.now == 10


def test_generator_return_inside_first_slice():
    sim = Simulator()

    def instant():
        return 42
        yield  # pragma: no cover - makes this a generator

    assert sim.run(sim.process(instant())) == 42


def test_many_waiters_on_one_event_all_resume():
    sim = Simulator()
    gate = sim.event()
    resumed = []

    def waiter(tag):
        value = yield gate
        resumed.append((tag, value))

    for tag in range(25):
        sim.process(waiter(tag))

    def opener():
        yield sim.timeout(7)
        gate.succeed("open")

    sim.process(opener())
    sim.run()
    assert resumed == [(tag, "open") for tag in range(25)]
