"""Property-based tests of model components and data structures."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.cpu.cache import L1Cache
from repro.device.replay import AccessTrace, ReplayModule, TraceEntry
from repro.memory import FlatMemory
from repro.runtime.queuepair import Descriptor, QueuePair
from repro.sim import Simulator
from repro.workloads.hashing import mix64

word_addr = st.integers(min_value=0, max_value=1 << 44).map(lambda a: a * 8)
word_value = st.integers(min_value=0, max_value=(1 << 64) - 1)


@given(writes=st.dictionaries(word_addr, word_value, max_size=40))
@settings(max_examples=80, deadline=None)
def test_memory_write_read_roundtrip(writes):
    memory = FlatMemory()
    for addr, value in writes.items():
        memory.write_word(addr, value)
    for addr, value in writes.items():
        assert memory.read_word(addr) == value
    assert memory.word_count() == len(writes)


@given(
    line_index=st.integers(min_value=0, max_value=1 << 30),
    words=st.lists(word_value, min_size=8, max_size=8),
)
@settings(max_examples=80, deadline=None)
def test_line_bytes_decompose_to_words(line_index, words):
    memory = FlatMemory()
    line_addr = line_index * 64
    for offset, value in enumerate(words):
        memory.write_word(line_addr + offset * 8, value)
    line = memory.read_line(line_addr)
    for offset, value in enumerate(words):
        assert (
            FlatMemory.word_from_line(line_addr, line, line_addr + offset * 8)
            == value
        )


@given(
    lines=st.lists(
        st.integers(min_value=0, max_value=4096).map(lambda i: i * 64),
        min_size=1,
        max_size=200,
    ),
    sets=st.sampled_from([1, 2, 8]),
    ways=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=60, deadline=None)
def test_cache_never_exceeds_geometry(lines, sets, ways):
    cache = L1Cache(CacheConfig(sets=sets, ways=ways))
    for line in lines:
        cache.install(line)
        assert cache.resident_lines <= sets * ways
        assert cache.contains(line)  # most-recent install is resident
    assert cache.installs + 0 >= cache.evictions


@given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                min_size=2, max_size=200, unique=True))
@settings(max_examples=60, deadline=None)
def test_mix64_is_injective_on_samples(values):
    hashed = {mix64(v) for v in values}
    assert len(hashed) == len(values)


@given(
    trace_len=st.integers(min_value=1, max_value=60),
    skip_mask=st.lists(st.booleans(), min_size=1, max_size=60),
    window=st.integers(min_value=2, max_value=16),
)
@settings(max_examples=60, deadline=None)
def test_replay_serves_any_subsequence_in_order(trace_len, skip_mask, window):
    """Dropping arbitrary entries (cache hits) never breaks replay of
    the surviving subsequence."""
    sim = Simulator()
    trace = AccessTrace(
        TraceEntry(i * 64, bytes([i % 256]) * 64) for i in range(trace_len)
    )
    replay = ReplayModule(sim, trace, window_size=window, max_skip_age=4)
    requested = [
        i for i in range(trace_len) if skip_mask[i % len(skip_mask)]
    ]
    # The window slides at most window_size entries per lookup, so full
    # service is only guaranteed when skip gaps fit in the window.
    gaps = [b - a for a, b in zip([0] + requested, requested)]
    assume(all(gap <= window for gap in gaps))
    served = 0
    for i in requested:
        data = replay.lookup(i * 64)
        if data is not None:
            assert data == bytes([i % 256]) * 64
            served += 1
    assert served == len(requested)
    assert replay.matches == served


@given(
    reorder_seed=st.integers(min_value=0, max_value=2**31),
    trace_len=st.integers(min_value=4, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_replay_tolerates_local_reordering(reorder_seed, trace_len):
    """Swapping adjacent requests (speculation-induced reorder) never
    defeats a window of >= 2."""
    import random

    rng = random.Random(reorder_seed)
    sim = Simulator()
    trace = AccessTrace(
        TraceEntry(i * 64, bytes([i % 256]) * 64) for i in range(trace_len)
    )
    replay = ReplayModule(sim, trace, window_size=8)
    order = list(range(trace_len))
    for i in range(0, trace_len - 1, 2):
        if rng.random() < 0.5:
            order[i], order[i + 1] = order[i + 1], order[i]
    for i in order:
        assert replay.lookup(i * 64) == bytes([i % 256]) * 64
    assert replay.spurious_requests == 0


@given(counts=st.lists(st.integers(min_value=1, max_value=8), min_size=1,
                       max_size=30))
@settings(max_examples=60, deadline=None)
def test_queue_pair_fetch_preserves_order_across_bursts(counts):
    qp = QueuePair(core_id=0, entries=256)
    total = 0
    for burst in counts:
        for _ in range(burst):
            qp.enqueue(
                Descriptor(
                    core_id=0, thread_id=0,
                    device_addr=total * 64, response_addr=0,
                )
            )
            total += 1
    fetched = []
    while True:
        batch = qp.device_fetch(8)
        if not batch:
            break
        fetched.extend(d.device_addr for d in batch)
    assert fetched == [i * 64 for i in range(total)]


@given(
    keys=st.sets(st.integers(min_value=0, max_value=10**6), min_size=1,
                 max_size=60),
)
@settings(max_examples=40, deadline=None)
def test_bloom_has_no_false_negatives(keys):
    from repro.workloads.bloom import BloomFilter, BloomParams

    params = BloomParams(items=1 << 20, queries_per_thread=1)
    bloom = BloomFilter(params, base_addr=0, world=FlatMemory())
    bloom.populate(keys)
    assert all(bloom.contains_functional(key) for key in keys)


@given(n=st.integers(min_value=2, max_value=64),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_generated_graphs_are_simple_connected_undirected(n, seed):
    from repro.workloads.bfs import BfsParams, generate_graph

    params = BfsParams(vertices=n, average_degree=3, seed=seed)
    adjacency = generate_graph(params)
    seen = {0}
    stack = [0]
    while stack:
        u = stack.pop()
        for v in adjacency[u]:
            assert u != v
            assert u in adjacency[v]
            if v not in seen:
                seen.add(v)
                stack.append(v)
    assert len(seen) == n
