"""Differential property tests: fast-path kernel vs the frozen reference.

``repro.sim._reference`` is a verbatim copy of the kernel as it stood
before the same-tick run queue / lean events / O(1) joins rework.  The
rework's correctness claim is *bit-for-bit* behavioural equivalence, so
these tests execute randomized process graphs -- timeouts (including
zero-delay hops), shared gate events, ``all_of``/``any_of`` joins,
nested spawns -- on both kernels and require identical traces, clocks,
and error outcomes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import _reference as ref_kernel
from repro.sim import kernel as fast_kernel


@st.composite
def _programs(draw):
    """A random process graph: per-process op lists over shared gates.

    Every gate is fired exactly once, by a ``fire`` op inserted at a
    random position of a random process -- but a process may block on a
    gate whose ``fire`` op sits later in its own (or a blocked) program,
    so graphs can deadlock; deadlock outcomes must match too.
    """
    n_gates = draw(st.integers(min_value=0, max_value=3))
    n_procs = draw(st.integers(min_value=1, max_value=4))
    ops = [
        st.tuples(st.just("timeout"), st.integers(min_value=0, max_value=12)),
        st.tuples(st.just("spawn"), st.integers(min_value=0, max_value=6)),
    ]
    if n_gates:
        gate_sets = st.lists(
            st.integers(min_value=0, max_value=n_gates - 1),
            min_size=1,
            max_size=n_gates,
            unique=True,
        )
        ops.append(st.tuples(st.just("all"), gate_sets))
        ops.append(st.tuples(st.just("any"), gate_sets))
    op = st.one_of(ops)
    programs = [
        draw(st.lists(op, min_size=0, max_size=6)) for _ in range(n_procs)
    ]
    for gate in range(n_gates):
        proc = draw(st.integers(min_value=0, max_value=n_procs - 1))
        position = draw(st.integers(min_value=0, max_value=len(programs[proc])))
        value = draw(st.integers(min_value=0, max_value=100))
        programs[proc].insert(position, ("fire", gate, value))
    return programs, n_gates


def _execute(module, programs, n_gates, until_pid=None):
    """Run a program graph on ``module``'s kernel; return its trace.

    The trace records every observable step with the simulated time and
    the value the step produced, plus the final clock and whether the
    run ended in a deadlock error (``run(until=...)`` only).
    """
    sim = module.Simulator()
    gates = [module.Event(sim) for _ in range(n_gates)]
    trace = []

    def child(pid, step, delay):
        yield sim.timeout(delay)
        trace.append(("child", pid, step, sim.now))

    def proc(pid, program):
        for step, op in enumerate(program):
            kind = op[0]
            if kind == "timeout":
                yield sim.timeout(op[1])
                trace.append(("timeout", pid, step, sim.now))
            elif kind == "spawn":
                sim.process(child(pid, step, op[1]))
            elif kind == "fire":
                gates[op[1]].succeed(op[2])
            elif kind == "all":
                value = yield module.all_of(sim, [gates[j] for j in op[1]])
                trace.append(("all", pid, step, sim.now, repr(value)))
            elif kind == "any":
                value = yield module.any_of(sim, [gates[j] for j in op[1]])
                trace.append(("any", pid, step, sim.now, repr(value)))
        trace.append(("done", pid, sim.now))

    processes = [
        sim.process(proc(pid, program))
        for pid, program in enumerate(programs)
    ]
    deadlocked = False
    if until_pid is None:
        sim.run()
    else:
        try:
            sim.run(processes[until_pid])
        except SimulationError:
            deadlocked = True
    return trace, sim.now, deadlocked


@given(graph=_programs())
@settings(max_examples=120, deadline=None)
def test_randomized_graphs_trace_identical_on_both_kernels(graph):
    programs, n_gates = graph
    assert _execute(fast_kernel, programs, n_gates) == _execute(
        ref_kernel, programs, n_gates
    )


@given(graph=_programs(), until_pid=st.integers(min_value=0, max_value=3))
@settings(max_examples=120, deadline=None)
def test_run_until_event_matches_reference_and_prefixes_full_run(
    graph, until_pid
):
    programs, n_gates = graph
    until_pid %= len(programs)
    partial = _execute(fast_kernel, programs, n_gates, until_pid=until_pid)
    assert partial == _execute(ref_kernel, programs, n_gates, until_pid=until_pid)
    full_trace, _now, _ = _execute(fast_kernel, programs, n_gates)
    partial_trace, _, deadlocked = partial
    if not deadlocked:
        # Stopping at an event only truncates the schedule; it never
        # reorders it.
        assert partial_trace == full_trace[: len(partial_trace)]


@given(
    n_procs=st.integers(min_value=1, max_value=6),
    waves=st.integers(min_value=1, max_value=5),
    delay=st.sampled_from([0, 3]),
)
@settings(max_examples=60, deadline=None)
def test_same_tick_events_fire_in_schedule_order(n_procs, waves, delay):
    """Same-tick ties resolve in schedule order: N processes looping on
    an identical timeout resume round-robin every wave, whether the
    timeout takes the run-queue fast path (0) or the heap (3)."""
    sim = fast_kernel.Simulator()
    order = []

    def looper(pid):
        for wave in range(waves):
            yield sim.timeout(delay)
            order.append((wave, pid))

    for pid in range(n_procs):
        sim.process(looper(pid))
    sim.run()
    assert order == [
        (wave, pid) for wave in range(waves) for pid in range(n_procs)
    ]
