"""Property-based tests of protocol-level invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PcieConfig
from repro.device.delay import DelayModule
from repro.interconnect.packets import Tlp, TlpKind
from repro.interconnect.pcie import PcieLink
from repro.sim import Simulator
from repro.units import ns


@given(
    arrivals=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=1, max_size=40
    ),
    delay_ns=st.integers(min_value=0, max_value=2_000),
)
@settings(max_examples=60, deadline=None)
def test_delay_module_never_releases_early_and_preserves_order(
    arrivals, delay_ns
):
    sim = Simulator()
    released = []
    delay = DelayModule(sim, ns(delay_ns), lambda r: released.append((r, sim.now)))
    arrivals = sorted(arrivals)

    def driver():
        for index, arrival in enumerate(arrivals):
            if arrival > sim.now // 1000:
                yield sim.timeout(ns(arrival) - sim.now)
            delay.submit(index, arrival_time=sim.now)

    sim.process(driver())
    sim.run()
    assert [r for r, _t in released] == list(range(len(arrivals)))
    for (index, released_at), arrival in zip(released, arrivals):
        assert released_at >= ns(arrival) + ns(delay_ns) - 1
    assert delay.deadline_misses == 0


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=512), min_size=1,
                   max_size=60),
)
@settings(max_examples=50, deadline=None)
def test_pcie_delivers_every_packet_exactly_once_in_order(sizes):
    sim = Simulator()
    link = PcieLink(sim, PcieConfig(propagation_ns=25.0))
    received = []
    link.downstream.set_receiver(lambda tlp: received.append(tlp.tag))
    for index, size in enumerate(sizes):
        link.downstream.send(
            Tlp(TlpKind.MEM_WRITE, address=0, payload_bytes=size, tag=index)
        )
    sim.run()
    assert received == list(range(len(sizes)))
    assert link.downstream.packets == len(sizes)
    assert link.downstream.payload_bytes == sum(sizes)
    assert link.downstream.wire_bytes == sum(sizes) + 24 * len(sizes)


@given(
    burst_pattern=st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                           max_size=20),
    capacity=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_store_buffer_drains_everything_in_order(burst_pattern, capacity):
    from repro.config import UncoreConfig
    from repro.cpu.storebuffer import PendingStore, StoreBuffer
    from repro.cpu.uncore import AddressSpace, Uncore
    from repro.sim import Event

    sim = Simulator()
    uncore = Uncore(sim, UncoreConfig())
    buffer = StoreBuffer(sim, capacity, uncore)
    drained = []

    class Sink:
        def write_line(self, store):
            drained.append(store.addr)
            done = Event(sim)
            done.succeed(None)
            return done

    buffer.attach_sink(AddressSpace.DRAM, Sink())
    total = 0

    def producer():
        nonlocal total
        for burst in burst_pattern:
            for _ in range(burst):
                yield from buffer.post(
                    PendingStore(total * 64, AddressSpace.DRAM, 8)
                )
                total += 1
            yield sim.timeout(ns(50))

    sim.process(producer())
    sim.run()
    assert drained == [i * 64 for i in range(total)]
    assert buffer.stores_drained == total
    assert buffer.occupancy == 0


@given(
    entries=st.integers(min_value=2, max_value=64),
    pattern=st.lists(st.booleans(), min_size=1, max_size=120),
)
@settings(max_examples=50, deadline=None)
def test_queue_pair_depth_never_exceeds_ring_size(entries, pattern):
    """Interleaved producer/consumer actions keep the ring bounded
    when the producer respects the full check (as the API does)."""
    from repro.runtime.queuepair import Descriptor, QueuePair

    qp = QueuePair(core_id=0, entries=entries)
    produced = consumed = 0
    for is_enqueue in pattern:
        if is_enqueue:
            if qp.requests_pending < entries:
                qp.enqueue(
                    Descriptor(core_id=0, thread_id=0,
                               device_addr=produced * 64, response_addr=0)
                )
                produced += 1
        else:
            consumed += len(qp.device_fetch(8))
    assert qp.max_request_depth <= entries
    consumed += len(qp.device_fetch(1 << 20)) if qp.requests_pending else 0
    while qp.requests_pending:
        consumed += len(qp.device_fetch(8))
    assert consumed == produced
