"""Configuration-space fuzzing: any valid config must build and run.

Hypothesis draws system configurations across the supported space;
every one must assemble, execute a short workload, serve every access,
and satisfy its structural invariants.  This is the guard against
validation holes between components ("valid per-field, broken
together").
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    AccessMechanism,
    CpuConfig,
    DeviceAttachment,
    DeviceConfig,
    SwqConfig,
    SystemConfig,
    ThreadingConfig,
    UncoreConfig,
)
from repro.host.system import System
from repro.units import us
from repro.workloads.microbench import MicrobenchSpec, install_microbench

mechanisms = st.sampled_from(list(AccessMechanism))

cpu_configs = st.builds(
    CpuConfig,
    lfb_entries=st.integers(min_value=1, max_value=24),
    rob_entries=st.sampled_from([64, 128, 192, 384]),
    work_chunk_instructions=st.sampled_from([8, 16, 32]),
    smt_contexts=st.sampled_from([1, 2]),
    prefetch_drop_when_full=st.booleans(),
)

uncore_configs = st.builds(
    UncoreConfig,
    pcie_queue_entries=st.integers(min_value=2, max_value=64),
    dram_queue_entries=st.integers(min_value=8, max_value=96),
)

swq_configs = st.builds(
    SwqConfig,
    fetch_burst=st.integers(min_value=1, max_value=16),
    fetch_pipeline=st.integers(min_value=1, max_value=4),
    doorbell_flag=st.booleans(),
    burst_reads=st.booleans(),
    ring_entries=st.sampled_from([16, 64, 256]),
)

threading_configs = st.builds(
    ThreadingConfig,
    context_switch_ns=st.floats(min_value=5.0, max_value=200.0),
    overhead_ipc=st.floats(min_value=0.5, max_value=2.0),
)


@st.composite
def system_configs(draw):
    mechanism = draw(mechanisms)
    if mechanism in (AccessMechanism.SOFTWARE_QUEUE, AccessMechanism.KERNEL_QUEUE):
        attachment = DeviceAttachment.PCIE
    else:
        attachment = draw(st.sampled_from(list(DeviceAttachment)))
    return SystemConfig(
        mechanism=mechanism,
        cores=draw(st.integers(min_value=1, max_value=4)),
        threads_per_core=draw(st.integers(min_value=1, max_value=12)),
        cpu=draw(cpu_configs),
        uncore=draw(uncore_configs),
        swq=draw(swq_configs),
        threading=draw(threading_configs),
        device=DeviceConfig(
            total_latency_us=draw(st.sampled_from([1.0, 2.0, 4.0])),
            attachment=attachment,
        ),
    )


@given(config=system_configs())
@settings(max_examples=25, deadline=None)
def test_any_valid_config_builds_and_serves_accesses(config):
    system = System(config)
    spec = MicrobenchSpec(work_count=100, iterations=3)
    install_microbench(system, spec, config.threads_per_core)
    system.run_to_completion(limit_ticks=10**11)
    expected = (
        config.cores
        * config.cpu.smt_contexts
        * config.threads_per_core
        * spec.iterations
    )
    served = system._total_accesses()
    assert served == expected
    # Structural invariants.
    report = system.report()
    assert max(report["lfb_max_per_core"]) <= config.cpu.lfb_entries
    device_queue_cap = (
        config.uncore.dram_queue_entries
        if config.device.attachment is DeviceAttachment.MEMORY_BUS
        else config.uncore.pcie_queue_entries
    )
    assert report["uncore_pcie_max"] <= device_queue_cap
    for runtime in system.runtimes:
        assert runtime.finished == len(runtime.threads)


@given(config=system_configs())
@settings(max_examples=10, deadline=None)
def test_any_valid_config_is_deterministic(config):
    def fingerprint():
        system = System(config)
        install_microbench(
            system, MicrobenchSpec(work_count=100, iterations=2),
            config.threads_per_core,
        )
        ticks = system.run_to_completion(limit_ticks=10**11)
        return ticks, system._total_accesses()

    assert fingerprint() == fingerprint()
