"""Property-based tests of the simulation kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


@given(delays=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1,
                       max_size=50))
@settings(max_examples=60, deadline=None)
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []

    def watcher(delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in delays:
        sim.process(watcher(delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    holds=st.lists(st.integers(min_value=1, max_value=1000), min_size=1,
                   max_size=40),
)
@settings(max_examples=60, deadline=None)
def test_resource_never_exceeds_capacity_and_serves_everyone(capacity, holds):
    sim = Simulator()
    resource = Resource(sim, capacity)
    served = []

    def user(index, hold):
        yield resource.acquire()
        assert resource.in_use <= capacity
        yield sim.timeout(hold)
        resource.release()
        served.append(index)

    for index, hold in enumerate(holds):
        sim.process(user(index, hold))
    sim.run()
    assert sorted(served) == list(range(len(holds)))
    assert resource.max_in_use <= capacity
    assert resource.in_use == 0


@given(
    items=st.lists(st.integers(), min_size=1, max_size=60),
    capacity=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
)
@settings(max_examples=60, deadline=None)
def test_store_preserves_fifo_order(items, capacity):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == items


@given(
    groups=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=8),    # slots
            st.integers(min_value=0, max_value=500),  # completion delay
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_rob_retires_everything_in_order(groups):
    from repro.cpu.rob import ReorderBuffer

    sim = Simulator()
    rob = ReorderBuffer(sim, capacity=8)
    retired = []

    def frontend():
        for index, (slots, delay) in enumerate(groups):
            yield from rob.allocate(slots)
            rob.commit(
                slots,
                sim.timeout(delay),
                on_retire=lambda i=index: retired.append(i),
            )

    sim.process(frontend())
    sim.run()
    assert retired == list(range(len(groups)))
    assert rob.free == rob.capacity
    assert rob.max_used <= rob.capacity
