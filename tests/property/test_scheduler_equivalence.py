"""Calendar-queue scheduler property tests.

The hybrid scheduler has two regimes -- sparse (pure heap, shallow
pending) and dense (calendar wheel, engaged past ``_DENSE_AT`` pending
timers) -- plus the seams between them: the sparse->dense migration,
the dense->sparse revert, overflow spills at the window edge, and lazy
re-bucketing on window advance.  These tests throw adversarial delay
distributions (bimodal, heavy-tailed, all-zero, exact-bucket-boundary)
at both regimes and require bit-for-bit trace equivalence with the
frozen reference kernel; deterministic regressions pin the
window-advance boundary and cross-check the empty-bucket fast-forward
against its closed form.

Shrinking the thresholds via :func:`_force_wheel` is the coverage
lever: production thresholds need ~1k pending timers to engage the
wheel, far beyond what a property example should simulate.
"""

from contextlib import contextmanager

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import _reference as ref_kernel
from repro.sim import kernel as fast_kernel


@contextmanager
def _force_wheel(dense_at=4, sparse_at=2):
    """Shrink the hybrid thresholds so tiny programs exercise the dense
    (calendar-wheel) mode and the dense->sparse revert."""
    saved = fast_kernel._DENSE_AT, fast_kernel._SPARSE_AT
    fast_kernel._DENSE_AT, fast_kernel._SPARSE_AT = dense_at, sparse_at
    try:
        yield
    finally:
        fast_kernel._DENSE_AT, fast_kernel._SPARSE_AT = saved


# -- delay distributions ---------------------------------------------------

_SMALL = st.integers(min_value=0, max_value=9)
_LARGE = st.integers(min_value=900, max_value=5_000)
#: Two well-separated modes: stresses bucket sizing (the width that
#: suits one mode spills the other).
_BIMODAL = st.one_of(_SMALL, _LARGE)
#: Log-uniform-ish tail out to ~1M ticks: stresses overflow spills,
#: window growth, and the migration path.
_HEAVY_TAILED = st.builds(
    lambda mantissa, exponent: mantissa << exponent,
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=0, max_value=17),
)
#: Degenerate: every event same-tick, the run-queue bypass path.
_ALL_ZERO = st.just(0)
#: Multiples of 1024 +/- 1: with ``_NBUCKETS`` one-tick-wide buckets
#: these land exactly on window-advance boundaries, the off-by-one
#: hotspot of the in-window test and the migration threshold.
_BUCKET_BOUNDARY = st.builds(
    lambda lap, jitter: lap * 1024 + jitter,
    st.integers(min_value=0, max_value=4),
    st.sampled_from([0, 1, 1023]),
)

_DISTRIBUTIONS = {
    "bimodal": _BIMODAL,
    "heavy_tailed": _HEAVY_TAILED,
    "all_zero": _ALL_ZERO,
    "bucket_boundary": _BUCKET_BOUNDARY,
}


@st.composite
def _timer_programs(draw):
    """Per-process delay lists, all drawn from one distribution."""
    delays = _DISTRIBUTIONS[
        draw(st.sampled_from(sorted(_DISTRIBUTIONS)))
    ]
    n_procs = draw(st.integers(min_value=1, max_value=4))
    return [
        draw(st.lists(delays, min_size=0, max_size=12))
        for _ in range(n_procs)
    ]


def _run_timers(module, programs, stepped=False):
    """Execute timer programs on ``module``'s kernel; return the trace.

    ``stepped=True`` drives the simulation one :meth:`step` at a time
    instead of :meth:`run` -- the drain-equivalence check that keeps
    run()'s inlined fire loops honest against the canonical sequence.
    """
    sim = module.Simulator()
    trace = []

    def proc(pid, delays):
        for step, delay in enumerate(delays):
            yield sim.timeout(delay)
            trace.append((pid, step, sim.now))
        trace.append((pid, "done", sim.now))

    for pid, delays in enumerate(programs):
        sim.process(proc(pid, delays))
    if stepped:
        try:
            while True:
                sim.step()
        except SimulationError:
            pass
    else:
        sim.run()
    return trace, sim.now


@given(programs=_timer_programs())
@settings(max_examples=150, deadline=None)
def test_delay_distributions_trace_identical(programs):
    """Production thresholds (sparse regime end to end)."""
    assert _run_timers(fast_kernel, programs) == _run_timers(
        ref_kernel, programs
    )


@given(programs=_timer_programs())
@settings(max_examples=150, deadline=None)
def test_delay_distributions_trace_identical_dense(programs):
    """Forced-dense: the same graphs through the calendar wheel, its
    spill/migrate seams, and the dense->sparse revert."""
    expected = _run_timers(ref_kernel, programs)
    with _force_wheel():
        assert _run_timers(fast_kernel, programs) == expected


@given(programs=_timer_programs(), dense=st.booleans())
@settings(max_examples=80, deadline=None)
def test_step_drain_matches_run_drain(programs, dense):
    """step()-driven execution equals run()-driven execution in both
    regimes: one canonical fire order, however the loop is driven."""
    expected = _run_timers(ref_kernel, programs)
    if dense:
        with _force_wheel():
            assert _run_timers(fast_kernel, programs, stepped=True) == expected
    else:
        assert _run_timers(fast_kernel, programs, stepped=True) == expected


@given(
    n_procs=st.integers(min_value=5, max_value=8),
    waves=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_same_tick_fifo_order_in_dense_mode(n_procs, waves):
    """FIFO within a tick survives the wheel: same-tick entries share a
    bucket in insertion order, so N processes looping on an identical
    timeout resume round-robin every wave (no ``_seq`` tiebreaker
    needed)."""
    with _force_wheel():
        sim = fast_kernel.Simulator()
        order = []

        def looper(pid):
            for wave in range(waves):
                yield sim.timeout(7)
                order.append((wave, pid))

        for pid in range(n_procs):
            sim.process(looper(pid))
        sim.run()
        assert sim.kernel_stats()["mode_switches"] >= 1, "wheel never engaged"
    assert order == [
        (wave, pid) for wave in range(waves) for pid in range(n_procs)
    ]


def test_window_advance_boundary_spills_then_migrates():
    """Regression: events at the last in-window tick, exactly the first
    out-of-window tick, and one past it.  The first must go straight to
    its bucket; the other two must spill to the overflow tier and
    migrate back in -- all firing at their exact ticks, in tick order.
    """
    with _force_wheel():
        sim = fast_kernel.Simulator()
        fired = []

        def pad():
            yield sim.timeout(3)

        def driver():
            for _ in range(5):
                sim.process(pad())
            # First clock advance sees 6 > 4 pending: densify.  Delays
            # <= 3 keep the bucket width at one tick, so the window
            # spans exactly 1024 ticks from the current tick.
            yield sim.timeout(2)
            base = sim.now
            for delay in (1023, 1024, 1025):
                event = sim.timeout(delay)
                event.add_callback(
                    lambda _e, d=delay: fired.append((d, sim.now - base))
                )

        sim.process(driver())
        sim.run()
        stats = sim.kernel_stats()
    assert fired == [(1023, 1023), (1024, 1024), (1025, 1025)]
    assert stats["overflow_spills"] == 2, stats
    assert stats["overflow_migrations"] >= 2, stats
    assert stats["mode_switches"] >= 1, stats


def test_fast_forward_skip_count_matches_closed_form():
    """The quiescent-span fast-forward is exact, not approximate: with
    one-tick buckets on a single-lap run, every simulated tick is
    either fired in or skipped over exactly once, so the skip counter
    must equal the final clock in closed form."""
    with _force_wheel(dense_at=4, sparse_at=1):
        sim = fast_kernel.Simulator()

        def pad():
            yield sim.timeout(2)

        def driver():
            for _ in range(5):
                sim.process(pad())
            yield sim.timeout(1)  # densify on this advance
            yield sim.timeout(701)  # quiescent span: 700 empty buckets

        sim.process(driver())
        sim.run()
        stats = sim.kernel_stats()
    assert sim.now == 702
    # Ticks 1..702 were each crossed exactly once by the occupancy
    # scan (the occupied ones as scan targets, the empty ones inside
    # skip spans): closed form == final clock.
    assert stats["buckets_skipped"] == sim.now, stats
    assert stats["bucket_width"] == 1, stats
