"""Property tests for span conservation and exemplar determinism.

The conservation law -- every request's segment durations sum exactly
to its measured sojourn, per request and in aggregate -- must hold for
*any* service configuration, not just the figure grids.  Hypothesis
drives randomized configs through the open-loop driver; the sweep
tests then pin the other half of the contract: exemplar span trees are
deterministic across worker counts and bit-identical through the JSON
sweep cache.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    AccessMechanism,
    DeviceConfig,
    SwqConfig,
    SystemConfig,
)
from repro.harness.experiment import MeasureWindow
from repro.harness.service import ServiceParams, run_service
from repro.harness.sweep import SweepEngine, SweepJob
from repro.workloads.loadgen import ArrivalSpec, KeySpec, OpenLoopSpec

WINDOW = MeasureWindow(warmup_us=5.0, measure_us=30.0)


def _run(mechanism, cores, workers, rate, ring, theta, seed):
    config = SystemConfig(
        mechanism=mechanism,
        cores=cores,
        threads_per_core=workers,
        device=DeviceConfig(total_latency_us=1.0),
        swq=SwqConfig(ring_entries=ring),
    )
    params = ServiceParams(
        open_loop=OpenLoopSpec(
            arrivals=ArrivalSpec(rate_per_us=rate),
            keys=KeySpec(theta=theta),
            seed=seed,
        ),
        workers_per_core=workers,
        spans=True,
        span_exemplars=4,
    )
    return run_service(config, params, WINDOW)


@given(
    mechanism=st.sampled_from(list(AccessMechanism)),
    cores=st.sampled_from([1, 2]),
    workers=st.sampled_from([4, 8]),
    rate=st.sampled_from([0.1, 0.25, 0.4]),
    ring=st.sampled_from([16, 64]),
    theta=st.sampled_from([0.0, 0.9]),
    seed=st.integers(min_value=1, max_value=2**31),
)
@settings(max_examples=12, deadline=None)
def test_span_conservation_holds_for_random_configs(
    mechanism, cores, workers, rate, ring, theta, seed
):
    result = _run(mechanism, cores, workers, rate, ring, theta, seed)
    attribution = result.attribution
    conservation = attribution["conservation"]
    # Aggregate conservation is tick-exact (attribution() itself
    # raises on a violation; the equality is asserted for the record).
    assert conservation["sojourn_ticks"] == conservation["segments_ticks"]
    assert conservation["checked"] == conservation["closed"]
    assert attribution["requests"] == result.completions
    if attribution["requests"]:
        shares = sum(
            row["share"] for row in attribution["segments"].values()
        )
        assert shares == pytest.approx(1.0)
    # Every retained exemplar tree tiles its own lifetime.
    trees = list(result.exemplars["slowest"])
    trees.extend(result.exemplars["stratified"].values())
    for tree in trees:
        cursor = tree["arrived_at"]
        total = 0
        for _name, begin, end in tree["segments"]:
            assert begin == cursor and end >= begin
            total += end - begin
            cursor = end
        assert cursor == tree["finished_at"]
        assert total == tree["sojourn_ticks"]


def _span_job(rate, label=None):
    config = SystemConfig(
        mechanism=AccessMechanism.SOFTWARE_QUEUE,
        cores=2,
        threads_per_core=8,
        device=DeviceConfig(total_latency_us=1.0),
        swq=SwqConfig(ring_entries=32),
    )
    params = ServiceParams(
        open_loop=OpenLoopSpec(arrivals=ArrivalSpec(rate_per_us=rate)),
        workers_per_core=8,
        spans=True,
    )
    return SweepJob(config=config, service=params, window=WINDOW, label=label)


def test_exemplars_identical_serial_and_parallel(tmp_path):
    jobs = [_span_job(rate=r, label=str(r)) for r in (0.1, 0.3)]
    serial = SweepEngine(jobs=1, cache_dir=tmp_path / "serial").run(jobs)
    parallel = SweepEngine(jobs=2, cache_dir=tmp_path / "parallel").run(jobs)
    assert [o.payload for o in serial] == [o.payload for o in parallel]
    for outcome in serial:
        assert outcome.payload["exemplars"]["slowest"]
        conservation = outcome.payload["attribution"]["conservation"]
        assert (
            conservation["sojourn_ticks"] == conservation["segments_ticks"]
        )


def test_exemplars_bit_identical_through_sweep_cache(tmp_path):
    jobs = [_span_job(rate=0.3)]
    cache_dir = tmp_path / "cache"
    cold = SweepEngine(jobs=1, cache_dir=cache_dir).run(jobs)
    warm_engine = SweepEngine(jobs=1, cache_dir=cache_dir)
    warm = warm_engine.run(jobs)
    assert warm_engine.last_stats["cache_hits"] == 1
    assert all(o.cached for o in warm)
    # The cached payload crossed a JSON round-trip; exemplar span
    # trees (nested lists) must come back bit-identical.
    assert [o.payload for o in warm] == [o.payload for o in cold]
    fresh = json.loads(json.dumps(cold[0].payload))
    assert fresh == warm[0].payload


def test_span_flag_changes_job_digest(tmp_path):
    # A spans-on job must never collide with the spans-off cache entry
    # (the payload shapes differ).
    on = _span_job(rate=0.2)
    off = SweepJob(
        config=on.config,
        service=ServiceParams(
            open_loop=on.service.open_loop,
            workers_per_core=on.service.workers_per_core,
        ),
        window=WINDOW,
    )
    from repro.harness.sweep import job_digest

    assert job_digest(on) != job_digest(off)
