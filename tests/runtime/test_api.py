"""Unit tests for the mechanism-specific access contexts."""

import pytest

from repro.config import (
    AccessMechanism,
    BackingStore,
    DeviceConfig,
    SwqConfig,
    SystemConfig,
)
from repro.host.system import System
from repro.units import ns, to_ns


def build(mechanism, backing=BackingStore.DEVICE, **overrides):
    config = SystemConfig(mechanism=mechanism, backing=backing, **overrides)
    return System(config)


def run_thread(system, body_factory):
    handle = system.spawn(0, body_factory)
    system.run_to_completion(limit_ticks=10**10)
    return handle.result


def test_read_returns_stored_word_on_every_mechanism():
    for mechanism in AccessMechanism:
        system = build(mechanism)
        addr = system.alloc_data(0, 64) + 16
        system.world.write_word(addr, 0xABCD)

        def factory(ctx):
            def body():
                value = yield from ctx.read(addr)
                return value
            return body()

        assert run_thread(system, factory) == 0xABCD, mechanism


def test_read_batch_returns_values_in_request_order():
    system = build(AccessMechanism.PREFETCH)
    base = system.alloc_data(0, 4 * 64)
    addrs = [base + i * 64 for i in range(4)]
    for i, addr in enumerate(addrs):
        system.world.write_word(addr, 100 + i)

    def factory(ctx):
        def body():
            values = yield from ctx.read_batch(addrs)
            return values
        return body()

    assert run_thread(system, factory) == [100, 101, 102, 103]


def test_swq_batch_with_duplicate_addresses():
    """Bloom probes can hash two probes into one word."""
    system = build(AccessMechanism.SOFTWARE_QUEUE)
    addr = system.alloc_data(0, 64)
    system.world.write_word(addr, 5)

    def factory(ctx):
        def body():
            values = yield from ctx.read_batch([addr, addr, addr + 8])
            return values
        return body()

    assert run_thread(system, factory) == [5, 5, 0]


def test_work_after_tokens_waits_for_data():
    system = build(AccessMechanism.PREFETCH, device=DeviceConfig(total_latency_us=2.0))

    def factory(ctx):
        def body():
            addr = 1 << 40  # device base
            tokens = yield from ctx.read_batch_async([addr])
            done = yield from ctx.work(50, after=tokens)
            yield done
            return to_ns(ctx.core.sim.now)
        return body()

    finished = run_thread(system, factory)
    assert finished >= 2000  # the 2 us access gated the work


def test_swq_async_returns_no_tokens_but_data_present():
    system = build(AccessMechanism.SOFTWARE_QUEUE)
    addr = system.alloc_data(0, 64)

    def factory(ctx):
        def body():
            tokens = yield from ctx.read_batch_async([addr])
            return tokens
        return body()

    assert run_thread(system, factory) == []


def test_swq_doorbell_rung_only_when_flagged():
    system = build(AccessMechanism.SOFTWARE_QUEUE, threads_per_core=4)
    base = system.alloc_data(0, 64 * 64)

    def factory(ctx):
        def body():
            for i in range(8):
                yield from ctx.read(base + (ctx.thread_id * 8 + i) * 64 + 0)
            return None
        return body()

    for _ in range(4):
        system.spawn(0, factory)
    system.run_to_completion(limit_ticks=10**11)
    qp = system.queue_pairs[0]
    # 32 accesses but far fewer doorbells: the doorbell-request flag
    # keeps the fetcher running while the ring refills.
    assert qp.descriptors_enqueued == 32
    assert qp.doorbells_rung < 32


def test_swq_without_flag_rings_every_time():
    system = build(
        AccessMechanism.SOFTWARE_QUEUE,
        swq=SwqConfig(doorbell_flag=False),
    )
    base = system.alloc_data(0, 64 * 16)

    def factory(ctx):
        def body():
            for i in range(8):
                yield from ctx.read(base + i * 64)
            return None
        return body()

    system.spawn(0, factory)
    system.run_to_completion(limit_ticks=10**11)
    assert system.queue_pairs[0].doorbells_rung == 8


def test_kernel_queue_charges_microseconds():
    fast = build(AccessMechanism.SOFTWARE_QUEUE)
    slow = build(AccessMechanism.KERNEL_QUEUE)

    def factory(ctx):
        def body():
            yield from ctx.read(1 << 40)
            return to_ns(ctx.core.sim.now)
        return body()

    swq_ns = run_thread(fast, factory)
    kq_ns = run_thread(slow, factory)
    assert kq_ns > swq_ns + 3000  # syscall + switches + interrupt


def test_local_work_not_counted_as_work():
    system = build(AccessMechanism.PREFETCH)

    def factory(ctx):
        def body():
            yield from ctx.local_work(64)
            yield from ctx.work(32)
            done = yield from ctx.work(0)
            yield done
            return None
        return body()

    system.work_counter.active = True
    run_thread(system, factory)
    system.sim.run()
    assert system.work_counter.total == 32


def test_software_cost_scales_with_overhead_ipc():
    from repro.config import ThreadingConfig

    slow = build(
        AccessMechanism.PREFETCH,
        threading=ThreadingConfig(overhead_ipc=0.5, context_switch_ns=0),
    )
    fast = build(
        AccessMechanism.PREFETCH,
        threading=ThreadingConfig(overhead_ipc=2.0, context_switch_ns=0),
    )

    def factory(ctx):
        def body():
            yield from ctx.software_cost(460)
            return ctx.core.sim.now
        return body()

    assert run_thread(slow, factory) == 4 * run_thread(fast, factory)


def test_swq_oversized_batch_rejected():
    from repro.errors import ProtocolError

    system = build(AccessMechanism.SOFTWARE_QUEUE)
    base = system.alloc_data(0, 64 * 16)

    def factory(ctx):
        def body():
            yield from ctx.read_batch([base + i * 64 for i in range(9)])
        return body()

    system.spawn(0, factory)
    with pytest.raises(ProtocolError, match="response buffer"):
        system.run_to_completion(limit_ticks=10**10)


def test_swq_full_ring_backpressures_instead_of_crashing():
    """An oversubscribed ring makes producers spin, not overflow."""
    from repro.config import SwqConfig

    system = build(
        AccessMechanism.SOFTWARE_QUEUE,
        threads_per_core=8,
        swq=SwqConfig(ring_entries=4),
    )
    base = system.alloc_data(0, 64 * 256)

    def factory(ctx):
        def body():
            for i in range(4):
                yield from ctx.read(
                    base + (ctx.thread_id * 16 + i) * 64
                )
            return None
        return body()

    for _ in range(8):
        system.spawn(0, factory)
    system.run_to_completion(limit_ticks=10**11)
    assert system.device.requests_served == 32
    assert system.queue_pairs[0].max_request_depth <= 4
