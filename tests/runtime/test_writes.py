"""Tests for posted device writes (section VII's future-work path)."""

import pytest

from repro.config import (
    AccessMechanism,
    BackingStore,
    CpuConfig,
    DeviceConfig,
    SystemConfig,
)
from repro.errors import SimulationError
from repro.host.system import System
from repro.units import to_ns, us
from repro.workloads.microbench import MicrobenchSpec


def build(mechanism=AccessMechanism.PREFETCH, **overrides):
    return System(SystemConfig(mechanism=mechanism, **overrides))


def run_thread(system, factory):
    handle = system.spawn(0, factory)
    system.run_to_completion(limit_ticks=10**10)
    return handle.result


def test_write_then_read_returns_written_value():
    for mechanism in AccessMechanism:
        system = build(mechanism)
        addr = system.alloc_data(0, 64)

        def factory(ctx):
            def body():
                yield from ctx.write(addr, 4242)
                value = yield from ctx.read(addr)
                return value
            return body()

        assert run_thread(system, factory) == 4242, mechanism


def test_writes_do_not_stall_the_thread():
    """A posted write costs ~a dispatch slot, not a device round trip."""
    system = build(device=DeviceConfig(total_latency_us=4.0))
    addr = system.alloc_data(0, 64 * 64)

    def factory(ctx):
        def body():
            for i in range(16):
                yield from ctx.write(addr + i * 64, i)
            return to_ns(ctx.core.sim.now)
        return body()

    elapsed_ns = run_thread(system, factory)
    # 16 posted writes to a 4us device complete in well under one
    # device latency of front-end time.
    assert elapsed_ns < 500


def test_store_buffer_backpressure():
    """With a tiny buffer, a write burst stalls on the drain path."""
    system = build(cpu=CpuConfig(store_buffer_entries=2))
    addr = system.alloc_data(0, 64 * 64)

    def factory(ctx):
        def body():
            for i in range(32):
                yield from ctx.write(addr + i * 64, i)
            return None
        return body()

    run_thread(system, factory)
    buffer = system.cores[0].memsys.store_buffer
    assert buffer.stores_posted == 32
    assert buffer.full_stalls > 0


def test_device_receives_posted_writes_over_pcie():
    system = build()
    addr = system.alloc_data(0, 64 * 16)

    def factory(ctx):
        def body():
            for i in range(8):
                yield from ctx.write(addr + i * 64, i)
            return None
        return body()

    run_thread(system, factory)
    system.sim.run()
    assert system.device.writes_received == 8
    assert system.device.write_bytes_received == 8 * 8


def test_swq_writes_are_fire_and_forget_descriptors():
    system = build(AccessMechanism.SOFTWARE_QUEUE)
    addr = system.alloc_data(0, 64 * 16)

    def factory(ctx):
        def body():
            for i in range(8):
                yield from ctx.write(addr + i * 64, i)
            # A read afterwards proves completions were not polluted
            # by the writes (no stray completion entries).
            value = yield from ctx.read(addr)
            return value
        return body()

    assert run_thread(system, factory) == 0
    system.sim.run()
    assert system.device.writes_served == 8
    assert system.queue_pairs[0].completions_posted == 1  # only the read


def test_write_without_store_buffer_raises():
    from repro.config import CacheConfig, UncoreConfig
    from repro.cpu import AddressSpace, CoreMemorySystem, OutOfOrderCore, Uncore
    from repro.sim import Simulator
    from repro.sim.trace import Counter
    from repro.testing import FixedLatencyTarget
    from repro.units import ns

    sim = Simulator()
    config = CpuConfig(frequency_ghz=1.0)
    uncore = Uncore(sim, UncoreConfig())
    uncore.attach_target(AddressSpace.DEVICE, FixedLatencyTarget(sim, ns(500)))
    memsys = CoreMemorySystem(sim, 0, CacheConfig(), 10, uncore, config.frequency)
    core = OutOfOrderCore(sim, 0, config, memsys, Counter("w"))

    def body():
        yield from core.issue_store(0, AddressSpace.DEVICE)

    with pytest.raises(SimulationError, match="store buffer"):
        sim.run(sim.process(body()))


def test_microbench_with_writes_barely_slows_down():
    """Section VII's conjecture, measured: adding posted writes to the
    prefetch loop costs almost nothing."""
    from repro.harness.experiment import MeasureWindow, run_microbench

    window = MeasureWindow(warmup_us=20, measure_us=60)
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        threads_per_core=10,
        device=DeviceConfig(total_latency_us=1.0),
    )
    read_only = run_microbench(config, MicrobenchSpec(work_count=200), window)
    with_writes = run_microbench(
        config, MicrobenchSpec(work_count=200, writes_per_batch=1), window
    )
    assert with_writes.work_ipc > 0.9 * read_only.work_ipc


def test_baseline_writes_go_to_dram():
    system = build(AccessMechanism.ON_DEMAND, backing=BackingStore.DRAM)
    addr = system.alloc_data(0, 64)

    def factory(ctx):
        def body():
            yield from ctx.write(addr, 5)
            return (yield from ctx.read(addr))
        return body()

    assert run_thread(system, factory) == 5
    system.sim.run()
    assert system.device.writes_received == 0
