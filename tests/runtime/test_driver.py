"""Unit tests for the core runtime (scheduler loop)."""

import pytest

from repro.config import CacheConfig, CpuConfig, UncoreConfig
from repro.cpu import AddressSpace, CoreMemorySystem, OutOfOrderCore, Uncore
from repro.errors import SimulationError
from repro.runtime.driver import CoreRuntime, SchedulerCosts
from repro.runtime.queuepair import Completion, QueuePair
from repro.runtime.uthread import BlockOnCompletions, ThreadState, YIELD_CONTROL
from repro.sim import Simulator
from repro.sim.trace import Counter
from repro.testing import FixedLatencyTarget
from repro.units import ns


def build_core(sim):
    config = CpuConfig(frequency_ghz=1.0)
    uncore = Uncore(sim, UncoreConfig())
    uncore.attach_target(AddressSpace.DEVICE, FixedLatencyTarget(sim, ns(500)))
    uncore.attach_target(AddressSpace.DRAM, FixedLatencyTarget(sim, ns(80)))
    memsys = CoreMemorySystem(sim, 0, CacheConfig(), 10, uncore, config.frequency)
    return OutOfOrderCore(sim, 0, config, memsys, Counter("work"))


def make_runtime(sim, switch_ns=35, queue_pair=None, **cost_overrides):
    core = build_core(sim)
    costs = SchedulerCosts(switch_ticks=ns(switch_ns), **cost_overrides)
    return CoreRuntime(sim, core, costs, queue_pair=queue_pair)


def test_threads_round_robin_on_yield():
    sim = Simulator()
    runtime = make_runtime(sim)
    order = []

    def thread(tag):
        for _ in range(2):
            order.append(tag)
            yield YIELD_CONTROL

    runtime.add_thread(thread("a"))
    runtime.add_thread(thread("b"))
    sim.run(runtime.start())
    assert order == ["a", "b", "a", "b"]


def test_context_switch_cost_charged():
    sim = Simulator()
    runtime = make_runtime(sim, switch_ns=35)

    def thread():
        yield YIELD_CONTROL
        yield YIELD_CONTROL

    runtime.add_thread(thread())
    sim.run(runtime.start())
    # Two yields -> two switch charges (single thread switches to itself).
    assert sim.now >= ns(70)
    assert runtime.context_switches == 2


def test_runtime_process_completes_when_threads_finish():
    sim = Simulator()
    runtime = make_runtime(sim)

    def thread():
        yield YIELD_CONTROL
        return "done"

    handle = runtime.add_thread(thread())
    sim.run(runtime.start())
    assert handle.state is ThreadState.FINISHED
    assert handle.result == "done"
    assert runtime.finished == 1


def test_thread_waiting_on_event_stalls_core():
    sim = Simulator()
    runtime = make_runtime(sim)
    stamps = []

    def thread():
        yield sim.timeout(ns(777))
        stamps.append(sim.now)

    runtime.add_thread(thread())
    sim.run(runtime.start())
    assert stamps == [ns(777)]


def test_block_on_completions_wakes_with_payload():
    sim = Simulator()
    qp = QueuePair(core_id=0, entries=8)
    runtime = make_runtime(
        sim, queue_pair=qp, poll_ticks=ns(20), completion_ticks=ns(10)
    )
    received = []

    def thread():
        completions = yield BlockOnCompletions(2)
        received.append([c.device_addr for c in completions])

    runtime.add_thread(thread())

    def device():
        yield sim.timeout(ns(300))
        qp.device_post_completion(
            Completion(thread_id=0, device_addr=0, response_addr=0, data=b"")
        )
        yield sim.timeout(ns(200))
        qp.device_post_completion(
            Completion(thread_id=0, device_addr=64, response_addr=0, data=b"")
        )

    sim.process(device())
    sim.run(runtime.start())
    assert received == [[0, 64]]
    assert sim.now >= ns(500)


def test_early_completions_buffered_until_block():
    """Completions that land before the thread blocks are not lost."""
    sim = Simulator()
    qp = QueuePair(core_id=0, entries=8)
    runtime = make_runtime(sim, queue_pair=qp, poll_ticks=ns(20))
    received = []

    def blocked_thread():
        completions = yield BlockOnCompletions(1)
        received.append(completions[0].device_addr)
        # Completion for the NEXT access arrives while we are still
        # running; the later block must consume it immediately.
        qp.device_post_completion(
            Completion(thread_id=0, device_addr=128, response_addr=0, data=b"")
        )

    def spinner():
        # Keeps the ready queue non-empty so delivery relies on the
        # opportunistic poll path.
        for _ in range(200):
            yield YIELD_CONTROL

    runtime.add_thread(blocked_thread())
    runtime.add_thread(spinner())
    qp.device_post_completion(
        Completion(thread_id=0, device_addr=64, response_addr=0, data=b"")
    )
    sim.run(runtime.start())
    assert received == [64]


def test_fifo_scheduler_polls_only_when_idle():
    sim = Simulator()
    qp = QueuePair(core_id=0, entries=8)
    runtime = make_runtime(sim, queue_pair=qp, poll_ticks=ns(25))

    def worker():
        completions = yield BlockOnCompletions(1)
        return completions[0].device_addr

    runtime.add_thread(worker())

    def device():
        yield sim.timeout(ns(1000))
        qp.device_post_completion(
            Completion(thread_id=0, device_addr=0, response_addr=0, data=b"")
        )

    sim.process(device())
    sim.run(runtime.start())
    # The scheduler busy-polled for ~1 us at 25 ns per empty poll.
    assert runtime.empty_polls >= 30


def test_blocked_threads_without_queue_pair_is_an_error():
    sim = Simulator()
    runtime = make_runtime(sim)  # no queue pair

    def thread():
        yield BlockOnCompletions(1)

    runtime.add_thread(thread())
    with pytest.raises(SimulationError):
        sim.run(runtime.start())


def test_unsupported_yield_rejected():
    sim = Simulator()
    runtime = make_runtime(sim)

    def thread():
        yield "garbage"

    runtime.add_thread(thread())
    with pytest.raises(SimulationError):
        sim.run(runtime.start())


def test_add_thread_after_start_rejected():
    sim = Simulator()
    runtime = make_runtime(sim)
    runtime.add_thread(iter(()))
    runtime.start()
    with pytest.raises(SimulationError):
        runtime.add_thread(iter(()))


def test_double_start_rejected():
    sim = Simulator()
    runtime = make_runtime(sim)
    runtime.add_thread(iter(()))
    runtime.start()
    with pytest.raises(SimulationError):
        runtime.start()


def test_spinners_do_not_starve_blocked_threads():
    """Opportunistic polling: a barrier-style spinner must not prevent
    completion delivery (the BFS livelock regression test)."""
    sim = Simulator()
    qp = QueuePair(core_id=0, entries=8)
    runtime = make_runtime(
        sim, queue_pair=qp, poll_ticks=ns(20), completion_ticks=ns(10)
    )
    state = {"woken": False}

    def blocked():
        yield BlockOnCompletions(1)
        state["woken"] = True

    def spinner():
        while not state["woken"]:
            yield YIELD_CONTROL

    runtime.add_thread(blocked())
    runtime.add_thread(spinner())

    def device():
        yield sim.timeout(ns(400))
        qp.device_post_completion(
            Completion(thread_id=0, device_addr=0, response_addr=0, data=b"")
        )

    sim.process(device())
    sim.run(runtime.start())
    assert state["woken"]
    assert runtime.opportunistic_polls >= 1
