"""Unit tests for the descriptor queue pair."""

import pytest

from repro.errors import ProtocolError
from repro.runtime.queuepair import Completion, Descriptor, QueuePair


def desc(i, core=0, thread=0):
    return Descriptor(
        core_id=core, thread_id=thread, device_addr=i * 64, response_addr=0x1000
    )


def comp(i, thread=0):
    return Completion(
        thread_id=thread, device_addr=i * 64, response_addr=0x1000, data=b"\x00" * 64
    )


def test_enqueue_then_fetch_fifo():
    qp = QueuePair(core_id=0, entries=8)
    for i in range(3):
        qp.enqueue(desc(i))
    batch = qp.device_fetch(8)
    assert [d.device_addr for d in batch] == [0, 64, 128]
    assert qp.requests_pending == 0


def test_fetch_respects_burst_limit():
    qp = QueuePair(core_id=0, entries=16)
    for i in range(10):
        qp.enqueue(desc(i))
    assert len(qp.device_fetch(8)) == 8
    assert len(qp.device_fetch(8)) == 2
    assert qp.device_fetch(8) == []


def test_ring_overflow_raises():
    qp = QueuePair(core_id=0, entries=2)
    qp.enqueue(desc(0))
    qp.enqueue(desc(1))
    with pytest.raises(ProtocolError):
        qp.enqueue(desc(2))


def test_doorbell_flag_protocol():
    qp = QueuePair(core_id=0, entries=8)
    assert qp.doorbell_needed  # fetcher starts idle
    qp.note_doorbell()
    assert not qp.doorbell_needed
    assert qp.doorbells_rung == 1
    qp.device_set_doorbell_flag()
    assert qp.doorbell_needed


def test_completions_fifo():
    qp = QueuePair(core_id=0, entries=8)
    qp.device_post_completion(comp(0))
    qp.device_post_completion(comp(1))
    assert qp.completions_visible == 2
    assert qp.pop_completion().device_addr == 0
    assert qp.pop_completion().device_addr == 64
    assert qp.pop_completion() is None


def test_completion_ring_overflow_raises():
    qp = QueuePair(core_id=0, entries=2)
    qp.device_post_completion(comp(0))
    qp.device_post_completion(comp(1))
    with pytest.raises(ProtocolError):
        qp.device_post_completion(comp(2))


def test_statistics():
    qp = QueuePair(core_id=0, entries=8)
    for i in range(5):
        qp.enqueue(desc(i))
    assert qp.descriptors_enqueued == 5
    assert qp.max_request_depth == 5
    qp.device_fetch(8)
    qp.device_post_completion(comp(0))
    assert qp.completions_posted == 1


def test_invalid_fetch_count():
    qp = QueuePair(core_id=0, entries=8)
    with pytest.raises(ProtocolError):
        qp.device_fetch(0)


def test_tiny_ring_rejected():
    with pytest.raises(ProtocolError):
        QueuePair(core_id=0, entries=1)


def test_reads_outstanding_tracks_sq_cq_credits():
    # Regression: with more threads than ring entries the host could
    # submit more reads than the completion ring holds, overflowing it
    # when the device posted them all.  ``reads_outstanding`` is the
    # credit count the API layer spins on.
    qp = QueuePair(core_id=0, entries=4)
    for i in range(3):
        qp.enqueue(desc(i))
    assert qp.reads_outstanding == 3
    qp.device_fetch(8)  # fetching does not return credits ...
    assert qp.reads_outstanding == 3
    qp.device_post_completion(comp(0))
    assert qp.reads_outstanding == 3  # ... nor does posting ...
    qp.pop_completion()
    assert qp.reads_outstanding == 2  # ... only consuming does.


def test_writes_do_not_consume_completion_credits():
    qp = QueuePair(core_id=0, entries=4)
    qp.enqueue(Descriptor(core_id=0, thread_id=0, device_addr=0,
                          response_addr=0, is_write=True))
    assert qp.reads_outstanding == 0
    qp.enqueue(desc(1))
    assert qp.reads_outstanding == 1
