"""Unit tests for the DRAM channel model."""

import pytest

from repro.errors import ConfigError
from repro.interconnect import DramChannel
from repro.sim import Simulator
from repro.units import ns


def test_single_access_latency():
    sim = Simulator()
    dram = DramChannel(sim, latency_ticks=ns(60), bandwidth_bytes_per_s=64e9)
    done = dram.access(64, value="line")
    assert sim.run(done) == "line"
    # 64 bytes at 64 GB/s = 1 ns bus + 60 ns latency.
    assert sim.now == ns(61)


def test_accesses_pipeline_behind_the_bus():
    sim = Simulator()
    dram = DramChannel(sim, latency_ticks=ns(60), bandwidth_bytes_per_s=6.4e9)
    times = []

    def reader(tag):
        yield dram.access(64, value=tag)
        times.append((tag, sim.now))

    for tag in ("a", "b"):
        sim.process(reader(tag))
    sim.run()
    # Bus slots: [0,10) and [10,20); each completes 60 ns after its slot.
    assert times == [("a", ns(70)), ("b", ns(80))]


def test_throughput_bounded_by_bandwidth():
    sim = Simulator()
    dram = DramChannel(sim, latency_ticks=ns(50), bandwidth_bytes_per_s=1e9)
    for _ in range(10):
        dram.access(100)
    sim.run()
    # 1000 bytes at 1 GB/s = 1000 ns of bus + 50 ns trailing latency.
    assert sim.now == ns(1050)
    assert dram.bytes_transferred == 1000
    assert dram.accesses == 10


def test_zero_byte_access_rejected():
    sim = Simulator()
    dram = DramChannel(sim, latency_ticks=0, bandwidth_bytes_per_s=1e9)
    with pytest.raises(ConfigError):
        dram.access(0)


def test_invalid_construction_rejected():
    sim = Simulator()
    with pytest.raises(ConfigError):
        DramChannel(sim, latency_ticks=-1, bandwidth_bytes_per_s=1e9)
    with pytest.raises(ConfigError):
        DramChannel(sim, latency_ticks=0, bandwidth_bytes_per_s=0)
