"""Unit tests for the PCIe link model."""

import pytest

from repro.config import PcieConfig
from repro.errors import ProtocolError
from repro.interconnect import PcieLink, Tlp, TlpKind
from repro.sim import Simulator
from repro.units import ns


def make_link(sim, **overrides):
    config = PcieConfig(**overrides)
    return PcieLink(sim, config)


def test_read_request_carries_no_payload():
    with pytest.raises(ValueError):
        Tlp(TlpKind.MEM_READ, address=0, payload_bytes=64)


def test_wire_bytes_includes_header():
    tlp = Tlp(TlpKind.COMPLETION, address=0, payload_bytes=64)
    assert tlp.wire_bytes(24) == 88


def test_single_packet_delivery_time():
    sim = Simulator()
    link = make_link(sim, bandwidth_bytes_per_s=4e9, propagation_ns=100.0)
    arrivals = []
    link.downstream.set_receiver(lambda tlp: arrivals.append((sim.now, tlp.tag)))
    tlp = Tlp(TlpKind.MEM_READ, address=0x100, payload_bytes=0, tag=7)
    link.downstream.send(tlp)
    sim.run()
    # 24 header bytes at 4 GB/s = 6 ns serialization, + 100 ns propagation.
    assert arrivals == [(ns(106), 7)]


def test_packets_serialize_fifo_at_bandwidth():
    sim = Simulator()
    link = make_link(sim, bandwidth_bytes_per_s=1e9, propagation_ns=0.0)
    arrivals = []
    link.upstream.set_receiver(lambda tlp: arrivals.append((sim.now, tlp.tag)))
    for tag in (1, 2):
        link.upstream.send(
            Tlp(TlpKind.MEM_WRITE, address=0, payload_bytes=76, tag=tag)
        )
    sim.run()
    # Each packet is 100 bytes at 1 GB/s = 100 ns of wire time.
    assert arrivals == [(ns(100), 1), (ns(200), 2)]


def test_directions_are_independent():
    sim = Simulator()
    link = make_link(sim, bandwidth_bytes_per_s=1e9, propagation_ns=0.0)
    down, up = [], []
    link.downstream.set_receiver(lambda tlp: down.append(sim.now))
    link.upstream.set_receiver(lambda tlp: up.append(sim.now))
    link.downstream.send(Tlp(TlpKind.MEM_WRITE, address=0, payload_bytes=76))
    link.upstream.send(Tlp(TlpKind.MEM_WRITE, address=0, payload_bytes=76))
    sim.run()
    # Full duplex: both finish at 100 ns, not 200.
    assert down == [ns(100)] and up == [ns(100)]


def test_byte_accounting_separates_payload_from_headers():
    sim = Simulator()
    link = make_link(sim, propagation_ns=0.0)
    link.upstream.set_receiver(lambda tlp: None)
    link.upstream.send(Tlp(TlpKind.COMPLETION, address=0, payload_bytes=64))
    link.upstream.send(Tlp(TlpKind.MEM_READ, address=0, payload_bytes=0))
    sim.run()
    assert link.upstream.payload_bytes == 64
    assert link.upstream.wire_bytes == 64 + 2 * 24
    assert link.upstream.packets == 2
    assert link.upstream.packets_by_kind == {"CplD": 1, "MRd": 1}
    assert link.upstream.useful_fraction() == pytest.approx(64 / 112)


def test_round_trip_matches_paper_ballpark():
    sim = Simulator()
    link = make_link(sim)  # defaults: 4 GB/s, 24 B header, 385 ns propagation
    rtt = link.round_trip_ticks(response_payload_bytes=64)
    # The paper reports ~800 ns PCIe round trip on its platform.
    assert ns(750) < rtt < ns(850)


def test_send_without_receiver_raises_inside_pump():
    sim = Simulator()
    link = make_link(sim)
    link.downstream.send(Tlp(TlpKind.MEM_READ, address=0, payload_bytes=0))
    with pytest.raises(ProtocolError):
        sim.run()


def test_double_receiver_attachment_rejected():
    sim = Simulator()
    link = make_link(sim)
    link.downstream.set_receiver(lambda tlp: None)
    with pytest.raises(ProtocolError):
        link.downstream.set_receiver(lambda tlp: None)


def test_utilization_tracks_busy_time():
    sim = Simulator()
    link = make_link(sim, bandwidth_bytes_per_s=1e9, propagation_ns=0.0)
    link.downstream.set_receiver(lambda tlp: None)
    link.downstream.send(Tlp(TlpKind.MEM_WRITE, address=0, payload_bytes=976))
    sim.run()
    sim.run(until=ns(2000))
    # 1000 bytes at 1 GB/s = 1000 ns busy of 2000 ns total.
    assert link.downstream.utilization.mean(sim.now) == pytest.approx(0.5)


def test_utilization_mean_with_back_to_back_same_tick_tlps():
    """Two TLPs sent at the same tick keep the wire continuously busy;
    the utilization integral must see one solid busy interval, not a
    busy/idle flicker that under-counts the second serialization."""
    sim = Simulator()
    link = make_link(sim, bandwidth_bytes_per_s=1e9, propagation_ns=0.0)
    link.downstream.set_receiver(lambda tlp: None)
    for tag in (1, 2):
        link.downstream.send(
            Tlp(TlpKind.MEM_WRITE, address=0, payload_bytes=476, tag=tag)
        )
    sim.run()
    # Two 500-byte packets at 1 GB/s: busy from t=0 to t=1000 ns.
    assert sim.now == ns(1000)
    assert link.downstream.utilization.mean(sim.now) == pytest.approx(1.0)
    assert link.downstream.utilization.maximum == 1.0
    sim.run(until=ns(4000))
    # Busy 1000 of 4000 ns once the queue drains.
    assert link.downstream.utilization.mean(sim.now) == pytest.approx(0.25)


def test_utilization_counts_idle_time_before_first_packet():
    """Regression: the utilization probe anchors at link construction,
    so a late first packet averages over the leading idle time instead
    of starting the observation window at the first send."""
    sim = Simulator()
    link = make_link(sim, bandwidth_bytes_per_s=1e9, propagation_ns=0.0)
    link.upstream.set_receiver(lambda tlp: None)

    def late_sender():
        yield sim.timeout(ns(3000))
        link.upstream.send(
            Tlp(TlpKind.MEM_WRITE, address=0, payload_bytes=976)
        )

    sim.process(late_sender())
    sim.run()
    # 1000 ns busy out of 4000 ns since t=0 -- not 1000/1000.
    assert sim.now == ns(4000)
    assert link.upstream.utilization.mean(sim.now) == pytest.approx(0.25)


def test_packets_by_kind_and_useful_fraction_accumulate():
    sim = Simulator()
    link = make_link(sim, propagation_ns=0.0)
    link.downstream.set_receiver(lambda tlp: None)
    link.downstream.send(Tlp(TlpKind.MEM_READ, address=0, payload_bytes=0))
    link.downstream.send(Tlp(TlpKind.MEM_READ, address=0, payload_bytes=0))
    link.downstream.send(Tlp(TlpKind.MEM_WRITE, address=0, payload_bytes=8))
    link.downstream.send(Tlp(TlpKind.COMPLETION, address=0, payload_bytes=64))
    sim.run()
    assert link.downstream.packets == 4
    assert link.downstream.packets_by_kind == {
        "MRd": 2, "MWr": 1, "CplD": 1,
    }
    wire = 4 * 24 + 8 + 64
    assert link.downstream.wire_bytes == wire
    assert link.downstream.useful_fraction() == pytest.approx(72 / wire)


def test_idle_direction_reports_zero_useful_fraction():
    sim = Simulator()
    link = make_link(sim)
    assert link.upstream.packets == 0
    assert link.upstream.useful_fraction() == 0.0
    assert link.upstream.utilization.mean(ns(1000)) == 0.0


def test_saturated_direction_throughput_equals_bandwidth():
    sim = Simulator()
    link = make_link(sim, bandwidth_bytes_per_s=4e9, propagation_ns=10.0)
    count = []
    link.upstream.set_receiver(lambda tlp: count.append(tlp.tag))
    n = 100
    for i in range(n):
        link.upstream.send(Tlp(TlpKind.MEM_WRITE, address=0, payload_bytes=64, tag=i))
    sim.run()
    wire = n * (64 + 24)
    # Last delivery = serialization of all packets + one propagation.
    expected = round(wire / 4e9 * 1e12) + ns(10)
    assert sim.now == pytest.approx(expected, rel=0.01)
    assert count == list(range(n))
