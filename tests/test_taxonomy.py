"""Unit tests for the Table I taxonomy module."""

import pytest

from repro.taxonomy import TABLE_I, render_table_i, resolve


def test_render_groups_by_paradigm():
    text = render_table_i()
    # Paradigm labels print once per group.
    assert text.count("Caching") == 1
    assert text.count("Overlapping") == 1
    assert "prefetch" in text.lower()


def test_every_entry_is_well_formed():
    for entry in TABLE_I:
        assert entry.layer in ("HW", "SW")
        assert entry.mechanism
        if entry.implemented_by is None:
            assert entry.note


def test_resolve_returns_live_objects():
    from repro.cpu.cache import L1Cache

    assert resolve("repro.cpu.cache.L1Cache") is L1Cache


def test_resolve_unknown_path_raises():
    with pytest.raises((ImportError, AttributeError)):
        resolve("repro.cpu.cache.NoSuchThing")
