"""Unit tests for configuration validation."""

import dataclasses

import pytest

from repro.config import (
    AccessMechanism,
    BackingStore,
    CacheConfig,
    CpuConfig,
    DeviceConfig,
    HostDramConfig,
    KernelQueueConfig,
    OnboardDramConfig,
    PcieConfig,
    SwqConfig,
    SystemConfig,
    ThreadingConfig,
    UncoreConfig,
)
from repro.errors import ConfigError


def test_defaults_match_the_papers_testbed():
    config = SystemConfig()
    assert config.cpu.frequency_ghz == 2.3
    assert config.cpu.lfb_entries == 10
    assert config.uncore.pcie_queue_entries == 14
    assert config.pcie.bandwidth_bytes_per_s == 4e9
    assert config.pcie.header_bytes == 24
    assert config.swq.fetch_burst == 8
    assert 20 <= config.threading.context_switch_ns <= 50


def test_configs_are_frozen():
    config = SystemConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.cores = 4  # type: ignore[misc]


def test_replace_derives_variants():
    base = SystemConfig()
    variant = base.replace(cores=8, mechanism=AccessMechanism.PREFETCH)
    assert variant.cores == 8
    assert base.cores == 1


def test_cpu_validation():
    with pytest.raises(ConfigError):
        CpuConfig(frequency_ghz=0)
    with pytest.raises(ConfigError):
        CpuConfig(lfb_entries=0)
    with pytest.raises(ConfigError):
        CpuConfig(rob_entries=2)
    with pytest.raises(ConfigError):
        CpuConfig(smt_contexts=3)


def test_cache_validation():
    with pytest.raises(ConfigError):
        CacheConfig(line_bytes=48)
    with pytest.raises(ConfigError):
        CacheConfig(hit_cycles=0)
    assert CacheConfig().capacity_bytes == 32768


def test_uncore_validation():
    with pytest.raises(ConfigError):
        UncoreConfig(pcie_queue_entries=0)
    with pytest.raises(ConfigError):
        UncoreConfig(hop_ns=-1)


def test_pcie_validation():
    with pytest.raises(ConfigError):
        PcieConfig(bandwidth_bytes_per_s=0)
    with pytest.raises(ConfigError):
        PcieConfig(max_payload_bytes=32)


def test_dram_validation():
    with pytest.raises(ConfigError):
        HostDramConfig(latency_ns=0)
    with pytest.raises(ConfigError):
        OnboardDramConfig(stream_depth_lines=0)
    with pytest.raises(ConfigError):
        OnboardDramConfig(stream_burst_entries=0)


def test_device_validation():
    with pytest.raises(ConfigError):
        DeviceConfig(total_latency_us=0)
    with pytest.raises(ConfigError):
        DeviceConfig(replay_window=0)
    assert DeviceConfig(total_latency_us=1.0).total_latency_ticks == 10**6


def test_swq_validation():
    with pytest.raises(ConfigError):
        SwqConfig(ring_entries=3)  # not a power of two
    with pytest.raises(ConfigError):
        SwqConfig(fetch_burst=0)
    with pytest.raises(ConfigError):
        SwqConfig(fetch_pipeline=0)
    with pytest.raises(ConfigError):
        SwqConfig(enqueue_instructions=-1)


def test_kernel_queue_overhead_is_microseconds():
    kq = KernelQueueConfig()
    # The paper: kernel-managed queues cost several microseconds.
    assert kq.per_access_ticks >= 5_000_000  # >= 5 us in picoseconds


def test_threading_validation():
    with pytest.raises(ConfigError):
        ThreadingConfig(context_switch_ns=-1)
    with pytest.raises(ConfigError):
        ThreadingConfig(overhead_ipc=0)


def test_baseline_requires_on_demand():
    with pytest.raises(ConfigError):
        SystemConfig(
            backing=BackingStore.DRAM, mechanism=AccessMechanism.PREFETCH
        )


def test_describe_is_informative():
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        cores=2,
        threads_per_core=10,
        device=DeviceConfig(total_latency_us=4.0),
    )
    text = config.describe()
    assert "prefetch" in text and "2core" in text and "4us" in text
    baseline = SystemConfig(backing=BackingStore.DRAM)
    assert "DRAM" in baseline.describe()
