"""Direct unit tests for the request fetcher's DMA engine."""

from repro.config import PcieConfig, SwqConfig
from repro.device.fetcher import DmaReadRequest, DmaWriteRequest, RequestFetcher
from repro.interconnect.packets import Tlp, TlpKind
from repro.interconnect.pcie import PcieLink
from repro.runtime.queuepair import Descriptor, QueuePair
from repro.sim import Simulator
from repro.units import ns


class FakeHost:
    """Answers the fetcher's DMA reads like the root complex would."""

    def __init__(self, sim, link, fetcher_name, dram_ns=60):
        self.sim = sim
        self.link = link
        self.fetcher_name = fetcher_name
        self.dram_ticks = ns(dram_ns)
        self.reads_seen = 0
        self.flag_writes_seen = 0
        link.upstream.set_receiver(self.on_tlp)

    def on_tlp(self, tlp):
        if tlp.kind is TlpKind.MEM_READ:
            self.reads_seen += 1
            self.sim.process(self._answer(tlp))
        elif tlp.kind is TlpKind.MEM_WRITE:
            self.flag_writes_seen += 1
            self.sim.process(self._commit(tlp))

    def _answer(self, tlp):
        yield self.sim.timeout(self.dram_ticks)
        context = tlp.context
        assert isinstance(context, DmaReadRequest)
        self.link.downstream.send(
            Tlp(
                TlpKind.COMPLETION,
                tlp.address,
                context.reply_bytes,
                tag=tlp.tag,
                requester=tlp.requester,
                data=context.read_fn(),
            )
        )

    def _commit(self, tlp):
        yield self.sim.timeout(self.dram_ticks)
        context = tlp.context
        if isinstance(context, DmaWriteRequest) and context.on_commit:
            context.on_commit()


def build(swq_config=None, descriptors=0):
    sim = Simulator()
    link = PcieLink(sim, PcieConfig(propagation_ns=50.0))
    qp = QueuePair(core_id=0, entries=64)
    served = []
    fetcher = RequestFetcher(
        sim,
        core_id=0,
        queue_pair=qp,
        link=link,
        config=swq_config or SwqConfig(),
        ring_addr=0x10000,
        serve=lambda descriptor, arrival: served.append(
            (descriptor.device_addr, arrival)
        ),
    )
    link.downstream.set_receiver(
        lambda tlp: fetcher.deliver_completion(tlp)
        if tlp.kind is TlpKind.COMPLETION
        else None
    )
    host = FakeHost(sim, link, fetcher.name)
    for i in range(descriptors):
        qp.enqueue(
            Descriptor(core_id=0, thread_id=0, device_addr=i * 64, response_addr=0)
        )
    return sim, link, qp, fetcher, host, served


def test_doorbell_starts_fetching_and_serves_all():
    sim, _link, qp, fetcher, _host, served = build(descriptors=20)
    fetcher.ring_doorbell()
    sim.run(until=ns(100_000))
    assert [addr for addr, _ in served] == [i * 64 for i in range(20)]
    assert fetcher.descriptors_fetched == 20


def test_fetcher_idles_and_sets_flag_after_drain():
    sim, _link, qp, fetcher, host, _served = build(descriptors=4)
    fetcher.ring_doorbell()
    sim.run(until=ns(100_000))
    assert fetcher.empty_bursts >= 1
    assert fetcher.flag_writes == 1
    assert qp.doorbell_needed  # flag published for the host


def test_enqueue_never_stranded_regardless_of_race_timing():
    """The enqueue/flag race: a host following the protocol (enqueue,
    then ring iff the flag asks) always gets served, whether the
    enqueue lands mid-fetch, inside the flag-commit window (where the
    device's recheck covers it), or after the flag is published."""
    for race_ns in (200, 500, 900, 1400, 3000, 10_000):
        sim, _link, qp, fetcher, _host, served = build(descriptors=1)
        fetcher.ring_doorbell()

        def racer(sim=sim, qp=qp, fetcher=fetcher, delay=race_ns):
            yield sim.timeout(ns(delay))
            qp.enqueue(
                Descriptor(core_id=0, thread_id=0, device_addr=0x999 * 64,
                           response_addr=0)
            )
            # The host-side protocol: ring only when the flag asks.
            if qp.doorbell_needed:
                qp.note_doorbell()
                fetcher.ring_doorbell()

        sim.process(racer())
        sim.run(until=ns(300_000))
        assert 0x999 * 64 in [addr for addr, _ in served], race_ns


def test_flag_commit_recheck_covers_the_unringable_window():
    """An enqueue that lands after the empty burst but before the flag
    publishes sees doorbell_needed=False and does NOT ring; the
    device's commit-time recheck must rescue it."""
    sim, _link, qp, fetcher, _host, served = build(descriptors=1)
    qp.note_doorbell()
    fetcher.ring_doorbell()

    def racer():
        yield sim.timeout(ns(500))  # inside the wind-down window
        assert not qp.doorbell_needed  # flag not published yet
        qp.enqueue(
            Descriptor(core_id=0, thread_id=0, device_addr=0x999 * 64,
                       response_addr=0)
        )
        # Host protocol: flag says no doorbell needed -> no ring.

    sim.process(racer())
    sim.run(until=ns(300_000))
    assert 0x999 * 64 in [addr for addr, _ in served]
    assert fetcher.doorbells_received == 2  # the recheck's self-ring


def test_pipelined_bursts_outpace_sequential():
    def drain_time(pipeline):
        sim, _link, _qp, fetcher, _host, served = build(
            SwqConfig(fetch_pipeline=pipeline), descriptors=48
        )
        fetcher.ring_doorbell()
        sim.run(until=ns(1_000_000))
        assert len(served) == 48
        return max(arrival for _addr, arrival in served)

    assert drain_time(2) < 0.75 * drain_time(1)


def test_burst_disabled_reads_one_descriptor_per_dma():
    sim, _link, _qp, fetcher, host, served = build(
        SwqConfig(burst_reads=False), descriptors=6
    )
    fetcher.ring_doorbell()
    sim.run(until=ns(200_000))
    assert len(served) == 6
    # 6 single reads + at least one empty confirming read.
    assert fetcher.bursts_issued >= 7


def test_doorbell_latched_during_active_fetch_is_not_lost():
    sim, _link, qp, fetcher, _host, served = build(descriptors=2)
    fetcher.ring_doorbell()
    fetcher.ring_doorbell()  # second ring while active: latched
    sim.run(until=ns(200_000))
    # The latched doorbell triggers one extra (empty) fetch round, but
    # everything is served exactly once and the fetcher re-idles.
    assert len(served) == 2
    assert fetcher.doorbells_received == 2
