"""Tests for trace persistence (save once, replay many times)."""

import pytest

from repro.device.replay import AccessTrace, TraceEntry
from repro.errors import ReplayError


def sample_trace(n=20, line_bytes=64):
    return AccessTrace(
        TraceEntry(i * 64, bytes([i % 256]) * line_bytes) for i in range(n)
    )


def test_save_load_roundtrip(tmp_path):
    path = tmp_path / "trace.bin"
    trace = sample_trace()
    written = trace.save(path)
    assert written == path.stat().st_size
    loaded = AccessTrace.load(path)
    assert len(loaded) == len(trace)
    assert list(loaded) == list(trace)


def test_empty_trace_roundtrip(tmp_path):
    path = tmp_path / "empty.bin"
    AccessTrace().save(path)
    assert len(AccessTrace.load(path)) == 0


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bogus.bin"
    path.write_bytes(b"NOTATRACEFILE")
    with pytest.raises(ReplayError, match="magic"):
        AccessTrace.load(path)


def test_truncated_file_rejected(tmp_path):
    path = tmp_path / "trunc.bin"
    sample_trace().save(path)
    blob = path.read_bytes()
    path.write_bytes(blob[:-10])
    with pytest.raises(ReplayError, match="truncated"):
        AccessTrace.load(path)


def test_inconsistent_line_sizes_rejected(tmp_path):
    trace = AccessTrace(
        [TraceEntry(0, b"\x00" * 64), TraceEntry(64, b"\x00" * 32)]
    )
    with pytest.raises(ReplayError, match="inconsistent"):
        trace.save(tmp_path / "bad.bin")


def test_saved_trace_drives_a_replay_run(tmp_path):
    """End to end: record -> save -> load -> replay."""
    from repro.config import AccessMechanism, SystemConfig
    from repro.host.system import System
    from repro.workloads.microbench import MicrobenchSpec, install_microbench

    def build():
        system = System(
            SystemConfig(mechanism=AccessMechanism.PREFETCH, threads_per_core=4)
        )
        install_microbench(
            system, MicrobenchSpec(work_count=100, iterations=25), 4
        )
        return system

    recorder = build()
    recorder.device.start_recording()
    recorder.run_to_completion(limit_ticks=10**11)
    traces = recorder.device.stop_recording()
    path = tmp_path / "core0.bin"
    traces[0].save(path)

    replayer = build()
    replayer.device.load_traces({0: AccessTrace.load(path)}, streamed=True)
    replayer.run_to_completion(limit_ticks=10**11)
    replay = replayer.device.replay_modules[0]
    assert replay.matches == 100
    assert replay.spurious_requests == 0
