"""Tests for the memory-bus-attached device (section V-B implication)."""

import pytest

from repro.config import (
    AccessMechanism,
    CpuConfig,
    DeviceAttachment,
    DeviceConfig,
    SystemConfig,
)
from repro.cpu.uncore import AddressSpace
from repro.errors import ConfigError
from repro.host.system import System
from repro.units import to_ns, us
from repro.workloads.microbench import MicrobenchSpec, install_microbench


def membus_config(**overrides):
    overrides.setdefault("mechanism", AccessMechanism.PREFETCH)
    overrides.setdefault(
        "device",
        DeviceConfig(
            total_latency_us=1.0, attachment=DeviceAttachment.MEMORY_BUS
        ),
    )
    return SystemConfig(**overrides)


def test_membus_read_returns_data_at_configured_latency():
    system = System(membus_config(mechanism=AccessMechanism.ON_DEMAND))
    addr = system.alloc_data(0, 64)
    system.world.write_word(addr, 77)

    def factory(ctx):
        def body():
            value = yield from ctx.read(addr)
            return value, to_ns(ctx.core.sim.now)
        return body()

    handle = system.spawn(0, factory)
    system.run_to_completion(limit_ticks=10**9)
    value, elapsed_ns = handle.result
    assert value == 77
    assert abs(elapsed_ns - 1000) < 60


def test_membus_uses_the_deep_dram_style_queue():
    system = System(membus_config())
    assert system.uncore.queue(AddressSpace.DEVICE).capacity == 48


def test_membus_bypasses_pcie_entirely():
    system = System(membus_config(threads_per_core=8))
    install_microbench(system, MicrobenchSpec(work_count=200), 8)
    system.run_window(us(10), us(30))
    assert system.link.total_wire_bytes() == 0
    assert system.device.requests_served > 50


def test_membus_multicore_exceeds_the_pcie_14_cap():
    def aggregate(attachment):
        config = SystemConfig(
            mechanism=AccessMechanism.PREFETCH,
            cores=8,
            threads_per_core=16,
            device=DeviceConfig(total_latency_us=1.0, attachment=attachment),
        )
        system = System(config)
        install_microbench(system, MicrobenchSpec(work_count=200), 16)
        stats = system.run_window(us(20), us(60))
        return stats.work_ipc, system

    pcie_ipc, _ = aggregate(DeviceAttachment.PCIE)
    membus_ipc, system = aggregate(DeviceAttachment.MEMORY_BUS)
    assert membus_ipc > 2.5 * pcie_ipc
    assert system.uncore.max_occupancy(AddressSpace.DEVICE) > 14


def test_membus_rejects_queue_mechanisms():
    with pytest.raises(ConfigError, match="memory-bus"):
        System(membus_config().replace(
            mechanism=AccessMechanism.SOFTWARE_QUEUE
        ))


def test_membus_with_sized_lfbs_reaches_parity_at_4us():
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        threads_per_core=44,
        cpu=CpuConfig(lfb_entries=40),
        device=DeviceConfig(
            total_latency_us=4.0, attachment=DeviceAttachment.MEMORY_BUS
        ),
    )
    from repro.harness.experiment import MeasureWindow, normalized_microbench

    value, _ = normalized_microbench(
        config,
        MicrobenchSpec(work_count=200),
        MeasureWindow(warmup_us=40, measure_us=100),
    )
    assert value > 0.9
