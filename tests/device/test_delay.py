"""Unit tests for the emulator's delay module."""

import pytest

from repro.device.delay import DelayModule
from repro.errors import ConfigError
from repro.sim import Simulator
from repro.units import ns


def test_response_released_at_arrival_plus_delay():
    sim = Simulator()
    sent = []
    delay = DelayModule(sim, ns(500), sent.append)

    def driver():
        yield sim.timeout(ns(100))
        delay.submit("r1", arrival_time=sim.now)

    sim.process(driver())
    sim.run()
    assert sent == ["r1"]
    assert sim.now == ns(600)


def test_delay_measured_from_arrival_not_submission():
    """Data that took time to produce still targets arrival + delay."""
    sim = Simulator()
    sent = []
    delay = DelayModule(sim, ns(500), lambda r: sent.append((r, sim.now)))

    def driver():
        arrival = sim.now
        yield sim.timeout(ns(200))  # data production time
        delay.submit("late-data", arrival_time=arrival)

    sim.process(driver())
    sim.run()
    assert sent == [("late-data", ns(500))]
    assert delay.deadline_misses == 0


def test_deadline_miss_counted_and_released_immediately():
    sim = Simulator()
    sent = []
    delay = DelayModule(sim, ns(100), lambda r: sent.append((r, sim.now)))

    def driver():
        arrival = sim.now
        yield sim.timeout(ns(400))  # data took longer than the deadline
        delay.submit("missed", arrival_time=arrival)

    sim.process(driver())
    sim.run()
    assert sent == [("missed", ns(400))]
    assert delay.deadline_misses == 1
    assert delay.worst_miss_ticks == ns(300)


def test_responses_keep_order_for_equal_deadlines():
    sim = Simulator()
    sent = []
    delay = DelayModule(sim, ns(100), sent.append)
    delay.submit("a", arrival_time=0)
    delay.submit("b", arrival_time=0)
    sim.run()
    assert sent == ["a", "b"]


def test_interleaved_arrivals_release_in_deadline_order():
    sim = Simulator()
    sent = []
    delay = DelayModule(sim, ns(100), lambda r: sent.append((r, sim.now)))

    def driver():
        delay.submit("first", arrival_time=0)
        yield sim.timeout(ns(30))
        delay.submit("second", arrival_time=sim.now)

    sim.process(driver())
    sim.run()
    assert sent == [("first", ns(100)), ("second", ns(130))]
    assert delay.released == 2


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ConfigError):
        DelayModule(sim, -1, lambda r: None)


def test_queued_statistic():
    sim = Simulator()
    delay = DelayModule(sim, ns(100), lambda r: None)
    delay.submit("x", arrival_time=0)
    assert delay.queued == 1
    sim.run()
    assert delay.queued == 0
