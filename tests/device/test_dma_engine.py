"""Unit tests for the trace-preload DMA engine."""

from repro.config import PcieConfig
from repro.device.emulator import DmaEngine
from repro.device.replay import AccessTrace, TraceEntry
from repro.interconnect.dram import DramChannel
from repro.interconnect.pcie import PcieLink
from repro.sim import Simulator
from repro.units import ns, to_us


def build(bandwidth=4e9):
    sim = Simulator()
    link = PcieLink(sim, PcieConfig(bandwidth_bytes_per_s=bandwidth))
    link.downstream.set_receiver(lambda tlp: None)
    link.upstream.set_receiver(lambda tlp: None)
    channel = DramChannel(sim, ns(200), 6.4e9, name="onboard")
    return sim, link, channel, DmaEngine(sim, link, channel)


def trace_of(entries):
    return AccessTrace(
        TraceEntry(i * 64, bytes(64)) for i in range(entries)
    )


def test_preload_moves_every_byte():
    sim, _link, channel, engine = build()
    trace = trace_of(100)

    def run():
        elapsed = yield from engine.preload(trace)
        return elapsed

    sim.run(sim.process(run()))
    assert engine.bytes_loaded == trace.storage_bytes
    assert channel.bytes_transferred == trace.storage_bytes


def test_preload_time_tracks_link_bandwidth():
    def elapsed(bandwidth):
        sim, _link, _channel, engine = build(bandwidth)
        trace = trace_of(400)

        def run():
            result = yield from engine.preload(trace)
            return result

        return sim.run(sim.process(run()))

    # Halving the link bandwidth roughly doubles the wire component.
    slow = elapsed(1e9)
    fast = elapsed(4e9)
    assert slow > 1.8 * fast


def test_empty_trace_is_instant():
    sim, _link, _channel, engine = build()

    def run():
        result = yield from engine.preload(AccessTrace())
        return result

    assert sim.run(sim.process(run())) == 0
    assert engine.bytes_loaded == 0


def test_preload_throughput_is_sane():
    """A 1 M-entry trace (the paper's scale) preloads in simulated
    tens of milliseconds -- i.e. negligible setup, as the paper's
    methodology assumes.  (Checked with a scaled-down trace.)"""
    sim, _link, _channel, engine = build()
    trace = trace_of(10_000)  # 720 KB

    def run():
        result = yield from engine.preload(trace)
        return result

    elapsed = sim.run(sim.process(run()))
    # 720 KB over a 4 GB/s link + 6.4 GB/s DRAM: well under 1 ms.
    assert to_us(elapsed) < 1000
