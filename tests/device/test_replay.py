"""Unit tests for the replay trace, streamer, and sliding window."""

import pytest

from repro.device.replay import AccessTrace, ReplayModule, ReplayStreamer, TraceEntry
from repro.errors import ReplayError
from repro.interconnect.dram import DramChannel
from repro.sim import Simulator
from repro.units import ns


def line(i):
    return i * 64


def data(i):
    return bytes([i % 256]) * 64


def make_trace(n):
    return AccessTrace(TraceEntry(line(i), data(i)) for i in range(n))


def make_module(sim, n=20, window=8, max_skip=4):
    return ReplayModule(sim, make_trace(n), window_size=window, max_skip_age=max_skip)


def test_trace_records_and_iterates():
    trace = AccessTrace()
    trace.record(line(1), data(1))
    trace.record(line(2), data(2))
    assert len(trace) == 2
    assert [entry.line_addr for entry in trace] == [line(1), line(2)]
    assert trace.storage_bytes == 2 * AccessTrace.ENTRY_BYTES


def test_trace_with_offset_shifts_addresses():
    trace = make_trace(3)
    shifted = trace.with_offset(0x1000)
    assert [e.line_addr for e in shifted] == [0x1000 + line(i) for i in range(3)]
    assert [e.data for e in shifted] == [e.data for e in trace]


def test_in_order_replay_matches_everything():
    sim = Simulator()
    replay = make_module(sim, n=20)
    for i in range(20):
        assert replay.lookup(line(i)) == data(i)
    assert replay.matches == 20
    assert replay.in_order_matches == 20
    assert replay.spurious_requests == 0


def test_cache_hit_skips_are_tolerated():
    """Entries the host never requests (CPU cache hits) must not block
    later matches."""
    sim = Simulator()
    replay = make_module(sim, n=20, window=8)
    # Host requests only every other recorded access.
    for i in range(0, 20, 2):
        assert replay.lookup(line(i)) == data(i)
    assert replay.matches == 10
    assert replay.spurious_requests == 0


def test_reordered_requests_match_within_window():
    sim = Simulator()
    replay = make_module(sim, n=10, window=8)
    order = [1, 0, 3, 2, 5, 4, 7, 6]
    for i in order:
        assert replay.lookup(line(i)) == data(i)
    assert replay.reordered_matches > 0
    assert replay.spurious_requests == 0


def test_spurious_request_returns_none():
    sim = Simulator()
    replay = make_module(sim, n=10)
    assert replay.lookup(0xDEAD000) is None
    assert replay.spurious_requests == 1
    # The window is untouched: the real sequence still matches.
    assert replay.lookup(line(0)) == data(0)


def test_skipped_entries_age_out_and_window_advances():
    """A long run of never-requested entries must not wedge the window."""
    sim = Simulator()
    replay = make_module(sim, n=40, window=4, max_skip=2)
    # Request only the second half of the trace; the first 20 entries
    # are "cache hits" that must age out as matches proceed.
    matched = 0
    for i in range(20, 40):
        if replay.lookup(line(i)) == data(i):
            matched += 1
    assert matched >= 10  # window advances past the stale prefix
    assert replay.skipped_entries > 0


def test_duplicate_line_in_trace_matches_twice():
    sim = Simulator()
    trace = AccessTrace(
        [TraceEntry(line(1), data(1)), TraceEntry(line(1), data(2))]
    )
    replay = ReplayModule(sim, trace, window_size=4)
    assert replay.lookup(line(1)) == data(1)  # oldest first (age-based)
    assert replay.lookup(line(1)) == data(2)


def test_invalid_window_rejected():
    sim = Simulator()
    with pytest.raises(ReplayError):
        ReplayModule(sim, make_trace(4), window_size=0)
    with pytest.raises(ReplayError):
        ReplayModule(sim, make_trace(4), window_size=4, max_skip_age=0)


def test_streamer_delivers_all_entries_in_order():
    sim = Simulator()
    channel = DramChannel(sim, latency_ticks=ns(100), bandwidth_bytes_per_s=6.4e9)
    streamer = ReplayStreamer(sim, make_trace(50), channel, fifo_depth=8,
                              burst_entries=4)
    received = []

    def consumer():
        for _ in range(50):
            entry = yield streamer.fifo.get()
            received.append(entry.line_addr)

    sim.process(consumer())
    sim.run()
    assert received == [line(i) for i in range(50)]
    assert streamer.exhausted
    assert streamer.streamed == 50


def test_streamer_respects_fifo_bound():
    sim = Simulator()
    channel = DramChannel(sim, latency_ticks=ns(100), bandwidth_bytes_per_s=6.4e9)
    streamer = ReplayStreamer(sim, make_trace(50), channel, fifo_depth=8,
                              burst_entries=4)
    sim.run(until=ns(100_000))
    # Without a consumer, the stream stalls at the FIFO bound.
    assert len(streamer.fifo) == 8
    assert not streamer.exhausted


def test_streamed_window_reports_starvation():
    """If the host outruns the stream, lookups are starved (counted)."""
    sim = Simulator()
    slow = DramChannel(sim, latency_ticks=ns(10_000), bandwidth_bytes_per_s=1e9)
    streamer = ReplayStreamer(sim, make_trace(10), slow, fifo_depth=4,
                              burst_entries=1)
    replay = ReplayModule(sim, streamer, window_size=4)
    assert replay.lookup(line(0)) is None  # nothing streamed yet
    assert replay.window_starved >= 1
    assert replay.spurious_requests == 1


def test_bulk_streaming_is_faster_than_single_entry():
    def stream_time(burst):
        sim = Simulator()
        channel = DramChannel(
            sim, latency_ticks=ns(200), bandwidth_bytes_per_s=6.4e9
        )
        streamer = ReplayStreamer(
            sim, make_trace(64), channel, fifo_depth=64, burst_entries=burst
        )
        sim.run()
        assert streamer.exhausted
        return sim.now

    assert stream_time(16) < stream_time(1) / 3


def test_remaining_counts_unadmitted_entries():
    sim = Simulator()
    replay = make_module(sim, n=20, window=8)
    assert replay.remaining == 20
    replay.lookup(line(0))
    # Window admitted 8 + refill after the match.
    assert replay.remaining <= 12
