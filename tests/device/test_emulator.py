"""Integration tests for the device emulators (MMIO and SWQ designs)."""

import pytest

from repro.config import (
    AccessMechanism,
    DeviceConfig,
    SwqConfig,
    SystemConfig,
)
from repro.device.replay import AccessTrace
from repro.errors import ProtocolError
from repro.host.system import System
from repro.units import to_ns, us
from repro.workloads.microbench import MicrobenchSpec, install_microbench


def run_recording(threads=4, iterations=50):
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH, threads_per_core=threads
    )
    system = System(config)
    spec = MicrobenchSpec(work_count=100, iterations=iterations)
    install_microbench(system, spec, threads)
    system.device.start_recording()
    system.run_to_completion(limit_ticks=10**11)
    return system, system.device.stop_recording()


def rebuild(threads=4, iterations=50):
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH, threads_per_core=threads
    )
    system = System(config)
    spec = MicrobenchSpec(work_count=100, iterations=iterations)
    install_microbench(system, spec, threads)
    return system


def test_recording_captures_every_access():
    system, traces = run_recording(threads=4, iterations=50)
    assert sum(len(t) for t in traces.values()) == 4 * 50
    assert system.device.requests_served == 4 * 50


def test_stop_without_start_raises():
    system = rebuild()
    with pytest.raises(ProtocolError):
        system.device.stop_recording()


def test_replay_run_reproduces_functional_run():
    """The paper's run-2: same workload against the replayed trace."""
    _sys1, traces = run_recording()
    system = rebuild()
    system.device.load_traces(traces, streamed=True)
    system.run_to_completion(limit_ticks=10**11)
    replay = system.device.replay_modules[0]
    total = sum(len(t) for t in traces.values())
    matched = sum(m.matches for m in system.device.replay_modules.values())
    assert matched == total
    assert replay.spurious_requests == 0
    assert system.device.delay.deadline_misses == 0


def test_replay_without_traces_rejected():
    system = rebuild()
    with pytest.raises(ProtocolError):
        system.device.load_traces({}, streamed=False)


def test_replay_missing_this_cores_trace_raises():
    _sys1, traces = run_recording()
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH, cores=2, threads_per_core=1
    )
    system = System(config)
    install_microbench(system, MicrobenchSpec(work_count=100, iterations=5), 1)
    # Arm replay with core 0's trace only; core 1's requests have no
    # replay module and must fail loudly.
    system.device.load_traces({0: traces[0]}, streamed=False)
    with pytest.raises(ProtocolError, match="no replay trace"):
        system.run_to_completion(limit_ticks=10**11)


def test_replay_serves_recorded_data():
    """Responses must carry the recorded bytes, end to end."""
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH)
    system = System(config)
    addr = system.alloc_data(0, 64)
    system.world.write_word(addr, 31337)

    def factory(ctx):
        def body():
            return (yield from ctx.read(addr))
        return body()

    system.device.start_recording()
    handle = system.spawn(0, factory)
    system.run_to_completion(limit_ticks=10**10)
    assert handle.result == 31337
    traces = system.device.stop_recording()

    replay_system = System(config)
    replay_addr = replay_system.alloc_data(0, 64)
    assert replay_addr == addr
    # Note: the functional memory of the replay system is EMPTY; the
    # value can only come from the recorded trace.
    replay_system.device.load_traces(traces, streamed=False)
    handle = replay_system.spawn(0, factory)
    replay_system.run_to_completion(limit_ticks=10**10)
    assert handle.result == 31337


def test_spurious_request_served_by_on_demand_module():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH)
    system = System(config)
    addr = system.alloc_data(0, 64)
    system.world.write_word(addr, 99)
    system.device.load_traces({0: AccessTrace()}, streamed=False)

    def factory(ctx):
        def body():
            return (yield from ctx.read(addr))
        return body()

    handle = system.spawn(0, factory)
    system.run_to_completion(limit_ticks=10**10)
    # Correct data, via the on-demand fallback path.
    assert handle.result == 99
    assert system.device.on_demand.reads == 1
    assert system.device.replay_modules[0].spurious_requests == 1


def test_mmio_latency_honored_for_each_of_three_latencies():
    for latency_us in (1.0, 2.0, 4.0):
        config = SystemConfig(
            mechanism=AccessMechanism.ON_DEMAND,
            device=DeviceConfig(total_latency_us=latency_us),
        )
        system = System(config)
        addr = system.alloc_data(0, 64)

        def factory(ctx):
            def body():
                yield from ctx.read(addr)
                return to_ns(ctx.core.sim.now)
            return body()

        handle = system.spawn(0, factory)
        system.run_to_completion(limit_ticks=10**10)
        assert abs(handle.result - latency_us * 1000) < 60


def test_swq_serves_requests_and_writes_back():
    config = SystemConfig(
        mechanism=AccessMechanism.SOFTWARE_QUEUE, threads_per_core=4
    )
    system = System(config)
    spec = MicrobenchSpec(work_count=100, iterations=20)
    install_microbench(system, spec, 4)
    system.run_to_completion(limit_ticks=10**11)
    assert system.device.requests_served == 80
    fetcher = system.device.fetchers[0]
    assert fetcher.descriptors_fetched == 80
    assert fetcher.bursts_issued >= 10
    # Each access produced a data write + a completion write upstream.
    assert system.bridge.dma_writes >= 160


def test_swq_burst_reads_amortize_dma():
    """With burst reads, bursts << descriptors fetched."""
    config = SystemConfig(
        mechanism=AccessMechanism.SOFTWARE_QUEUE, threads_per_core=8
    )
    system = System(config)
    install_microbench(system, MicrobenchSpec(work_count=100, iterations=20), 8)
    system.run_to_completion(limit_ticks=10**11)
    fetcher = system.device.fetchers[0]
    assert fetcher.descriptors_fetched == 160
    assert fetcher.bursts_issued < 160


def test_swq_single_reads_when_bursts_disabled():
    config = SystemConfig(
        mechanism=AccessMechanism.SOFTWARE_QUEUE,
        threads_per_core=4,
        swq=SwqConfig(burst_reads=False),
    )
    system = System(config)
    install_microbench(system, MicrobenchSpec(work_count=100, iterations=10), 4)
    system.run_to_completion(limit_ticks=10**11)
    fetcher = system.device.fetchers[0]
    # One DMA read per descriptor (plus trailing empty reads).
    assert fetcher.bursts_issued >= fetcher.descriptors_fetched


def test_swq_doorbell_to_bad_address_raises():
    config = SystemConfig(mechanism=AccessMechanism.SOFTWARE_QUEUE)
    system = System(config)
    system.bridge.post_mmio_write(system.map.host_addr(0), 8)
    with pytest.raises(ProtocolError):
        system.sim.run()
