"""End-to-end tests: traced runs, metrics snapshots, and the CLI."""

import io
import json

from repro.cli import main
from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.harness.experiment import MeasureWindow, run_microbench
from repro.harness.sweep import SweepEngine, SweepJob
from repro.obs import TraceConfig, Tracer
from repro.obs.validate import validate_trace
from repro.workloads.microbench import MicrobenchSpec

TINY = MeasureWindow(warmup_us=2.0, measure_us=8.0)


def _config(**kwargs) -> SystemConfig:
    kwargs.setdefault("mechanism", AccessMechanism.PREFETCH)
    kwargs.setdefault("threads_per_core", 4)
    kwargs.setdefault("device", DeviceConfig(total_latency_us=1.0))
    return SystemConfig(**kwargs)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_tracing_does_not_perturb_the_simulation():
    spec = MicrobenchSpec(work_count=100)
    plain = run_microbench(_config(), spec, TINY)
    tracer = Tracer()
    traced = run_microbench(_config(), spec, TINY, tracer=tracer)
    assert traced.work_ipc == plain.work_ipc
    assert traced.report == plain.report
    assert len(tracer.events) > 0


def test_traced_run_emits_valid_multi_track_trace():
    tracer = Tracer()
    run_microbench(_config(), MicrobenchSpec(work_count=100), TINY,
                   tracer=tracer)
    assert validate_trace(tracer.to_dict()) == []
    summary = tracer.summary()
    assert len(summary["tracks"]) >= 4
    assert {"rob", "lfb", "pcie"} <= set(summary["tracks"])


def test_track_filter_restricts_traced_output():
    tracer = Tracer(TraceConfig(tracks=frozenset({"rob"})))
    run_microbench(_config(), MicrobenchSpec(work_count=100), TINY,
                   tracer=tracer)
    assert set(tracer.track_counts) == {"rob"}


def test_system_metrics_snapshot_covers_every_layer():
    result = run_microbench(
        _config(), MicrobenchSpec(work_count=100), TINY, collect_metrics=True
    )
    metrics = result.report["metrics"]
    assert metrics["core0.instructions"]["total"] > 0
    assert metrics["core0.lfb.fills"]["value"] > 0
    assert metrics["pcie.upstream.packets"]["value"] > 0
    assert 0 <= metrics["pcie.upstream.util"]["mean"] <= 1
    assert metrics["device.delay.released"]["value"] > 0
    assert metrics["runtime0.context_switches"]["value"] > 0
    assert metrics["work"]["total"] > 0
    # The snapshot round-trips as strict JSON (CI consumes it).
    json.dumps(metrics, allow_nan=False)


def test_sweep_metrics_use_a_disjoint_cache_keyspace(tmp_path):
    job = SweepJob(
        config=_config(), spec=MicrobenchSpec(work_count=50), window=TINY
    )
    plain = SweepEngine(jobs=1, cache_dir=tmp_path)
    assert "metrics" not in plain.run([job])[0].payload
    with_metrics = SweepEngine(jobs=1, cache_dir=tmp_path,
                               collect_metrics=True)
    outcome = with_metrics.run([job])[0]
    # The metrics-bearing payload must not be served from the plain
    # run's cache entry (different payload shape, different key).
    assert with_metrics.last_stats["simulated"] == 1
    assert outcome.payload["metrics"]["core0.instructions"]["total"] > 0


def test_trace_cli_smoke(tmp_path):
    out_path = tmp_path / "trace.json"
    code, text = run_cli(
        "trace", "--figure", "fig3", "--quick", "--out", str(out_path)
    )
    assert code == 0
    assert "INVALID" not in text
    data = json.loads(out_path.read_text())
    assert validate_trace(data) == []
    tracks = [line.split(":")[0].strip() for line in text.splitlines()
              if line.startswith("  ")]
    assert len(tracks) >= 4


def test_trace_cli_track_and_sampling_flags(tmp_path):
    out_path = tmp_path / "trace.json"
    code, text = run_cli(
        "trace", "--figure", "fig2", "--quick", "--out", str(out_path),
        "--tracks", "rob,sched", "--sample", "4",
    )
    assert code == 0
    data = json.loads(out_path.read_text())
    assert {e["ph"] for e in data["traceEvents"]} <= {"X", "C", "i", "M"}
    tracks = {line.split(":")[0].strip() for line in text.splitlines()
              if line.startswith("  ")}
    assert tracks <= {"rob", "sched"}


def test_run_cli_writes_metrics_snapshot(tmp_path):
    metrics_path = tmp_path / "metrics.json"
    code, text = run_cli(
        "run", "--threads", "4", "--warmup-us", "2", "--measure-us", "8",
        "--metrics", str(metrics_path),
    )
    assert code == 0
    assert "metrics" in text
    snapshot = json.loads(metrics_path.read_text())
    assert snapshot["core0.instructions"]["total"] > 0
