"""Unit tests for the tracer and the trace-format validator."""

import pytest

from repro.obs import TRACKS, TraceConfig, Tracer
from repro.obs.validate import validate_trace


def test_complete_event_converts_ticks_to_microseconds():
    tracer = Tracer()
    tracer.complete("rob", 1, 2, "rob-stall", 1_000_000, 3_500_000,
                    args={"slots": 4})
    (event,) = tracer.events
    assert event["ph"] == "X"
    assert event["ts"] == pytest.approx(1.0)
    assert event["dur"] == pytest.approx(2.5)
    assert event["pid"] == 1 and event["tid"] == 2
    assert event["args"] == {"slots": 4}


def test_track_filter_drops_unselected_tracks():
    tracer = Tracer(TraceConfig(tracks=frozenset({"rob"})))
    tracer.complete("rob", 1, 1, "rob-stall", 0, 10)
    tracer.complete("lfb", 1, 1, "lfb-fill", 0, 10)
    tracer.counter("pcie", 3, "txq", 0, {"queued": 1})
    assert tracer.wants("rob") and not tracer.wants("lfb")
    assert len(tracer.events) == 1
    assert tracer.summary()["tracks"] == {"rob": 1}


def test_sampling_keeps_one_in_n_per_name_but_never_counters():
    tracer = Tracer(TraceConfig(sample_every=4))
    for tick in range(8):
        tracer.complete("lfb", 1, 1, "lfb-fill", tick, tick + 1)
        tracer.counter("lfb", 1, "occupancy", tick, {"buffers": tick})
    durations = [e for e in tracer.events if e["ph"] == "X"]
    counters = [e for e in tracer.events if e["ph"] == "C"]
    assert len(durations) == 2  # 1 in 4
    assert len(counters) == 8  # counters are exempt


def test_max_events_cap_drops_and_counts():
    tracer = Tracer(TraceConfig(max_events=3))
    for tick in range(5):
        tracer.instant("sched", 1, 1, "tick", tick)
    assert len(tracer.events) == 3
    assert tracer.dropped == 2
    assert tracer.to_dict()["otherData"]["dropped_events"] == 2


def test_config_rejects_unknown_tracks_and_bad_values():
    with pytest.raises(ValueError):
        TraceConfig(tracks=frozenset({"bogus"}))
    with pytest.raises(ValueError):
        TraceConfig(sample_every=0)
    with pytest.raises(ValueError):
        TraceConfig(max_events=0)


def test_from_track_list_parses_csv():
    assert TraceConfig.from_track_list(None).tracks == TRACKS
    assert TraceConfig.from_track_list("all").tracks == TRACKS
    assert TraceConfig.from_track_list("rob, lfb").tracks == frozenset(
        {"rob", "lfb"}
    )


def test_emitted_trace_validates():
    tracer = Tracer()
    tracer.process_name(1, "cores")
    tracer.thread_name(1, 1, "core0 rob")
    tracer.complete("rob", 1, 1, "rob-stall", 0, 100)
    tracer.instant("swq", 4, 2, "doorbell", 50)
    tracer.counter("queues", 2, "uncore.device-q", 60, {"in_use": 3})
    assert validate_trace(tracer.to_dict()) == []


def test_validator_catches_malformed_events():
    assert validate_trace([]) == ["top level must be a JSON object"]
    assert validate_trace({}) == ["traceEvents must be a list"]
    bad = {
        "traceEvents": [
            {"name": "", "ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 1},
            {"name": "x", "ph": "Z", "pid": 1, "tid": 1, "ts": 0},
            {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 1},
            {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0},
            {"name": "c", "ph": "C", "pid": 1, "tid": 0, "ts": 0,
             "args": {"v": "high"}},
            {"name": "i", "ph": "i", "pid": 1, "tid": 1, "ts": 0, "s": "x"},
            {"name": "meta", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "x"}},
        ]
    }
    errors = validate_trace(bad)
    assert len(errors) == 7
    assert any("non-empty string" in error for error in errors)
    assert any("'ph' 'Z'" in error for error in errors)
    assert any("non-negative" in error for error in errors)
    assert any("'dur'" in error for error in errors)
    assert any("must be a number" in error for error in errors)
    assert any("scope" in error for error in errors)
    assert any("metadata" in error for error in errors)


def test_write_and_validate_file(tmp_path):
    from repro.obs.validate import validate_file

    tracer = Tracer()
    tracer.complete("rob", 1, 1, "stall", 0, 10)
    path = tmp_path / "trace.json"
    tracer.write(str(path))
    assert validate_file(str(path)) == []
    assert validate_file(str(tmp_path / "missing.json"))


def test_async_span_emits_matched_begin_end_pair():
    tracer = Tracer()
    tracer.async_span("spans", 5, 99, "request", 17, 1_000_000, 3_000_000,
                      args={"key": 4})
    begin, end = tracer.events
    assert begin["ph"] == "b" and end["ph"] == "e"
    assert begin["cat"] == end["cat"] == "spans"
    assert begin["id"] == end["id"] == 17
    assert begin["ts"] == pytest.approx(1.0)
    assert end["ts"] == pytest.approx(3.0)
    assert begin["args"] == {"key": 4}
    assert "args" not in end
    assert validate_trace(tracer.to_dict()) == []


def test_async_span_respects_track_filter():
    tracer = Tracer(TraceConfig(tracks=frozenset({"rob"})))
    tracer.async_span("spans", 5, 99, "request", 1, 0, 10)
    assert tracer.events == []


def test_async_span_is_exempt_from_sampling():
    # A thinned pair would leave an unmatched begin; async spans must
    # bypass the 1-in-N sampler entirely.
    tracer = Tracer(TraceConfig(sample_every=4))
    for i in range(8):
        tracer.async_span("spans", 5, 99, "request", i, i * 10, i * 10 + 5)
    begins = [e for e in tracer.events if e["ph"] == "b"]
    ends = [e for e in tracer.events if e["ph"] == "e"]
    assert len(begins) == len(ends) == 8
    assert validate_trace(tracer.to_dict()) == []
