"""Unit tests for the hierarchical metrics registry."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry
from repro.sim.trace import Counter, LatencyStat, TimeWeighted


def test_registers_all_probe_kinds_and_snapshots():
    registry = MetricsRegistry()
    counter = Counter("c")
    counter.add(5)
    latency = LatencyStat("l")
    latency.record(100)
    latency.record(300)
    weighted = TimeWeighted("w")
    weighted.update(0, 1.0)
    weighted.update(50, 0.0)
    registry.register("core0.instructions", counter)
    registry.register("core0.fill_latency", latency)
    registry.register("pcie.upstream.util", weighted)
    registry.register("core0.lfb.in_flight", lambda: 7)

    snapshot = registry.snapshot(now=100)
    assert snapshot["core0.instructions"] == {
        "type": "counter", "total": 5, "windowed": 0,
    }
    assert snapshot["core0.fill_latency"]["count"] == 2
    assert snapshot["core0.fill_latency"]["mean"] == pytest.approx(200)
    assert snapshot["pcie.upstream.util"]["mean"] == pytest.approx(0.5)
    assert snapshot["core0.lfb.in_flight"] == {"type": "gauge", "value": 7}
    # Snapshot keys are sorted, so equal states serialize identically.
    assert list(snapshot) == sorted(snapshot)


def test_snapshot_is_strict_json():
    registry = MetricsRegistry()
    registry.register("empty_latency", LatencyStat("l"))
    payload = json.dumps(registry.snapshot(now=0), allow_nan=False)
    decoded = json.loads(payload)
    # NaN percentiles/means render as null, not as invalid JSON.
    assert decoded["empty_latency"]["mean"] is None
    assert decoded["empty_latency"]["p99"] is None


def test_duplicate_and_invalid_names_rejected():
    registry = MetricsRegistry()
    registry.register("a.b", lambda: 1)
    with pytest.raises(ConfigError):
        registry.register("a.b", lambda: 2)
    with pytest.raises(ConfigError):
        registry.register("", lambda: 3)
    with pytest.raises(ConfigError):
        registry.register("bad", object())


def test_register_many_prefixes_names():
    registry = MetricsRegistry()
    registry.register_many("lfb", {"fills": lambda: 1, "merges": lambda: 2})
    assert "lfb.fills" in registry and "lfb.merges" in registry
    assert len(registry) == 2
    assert list(registry.names()) == ["lfb.fills", "lfb.merges"]
