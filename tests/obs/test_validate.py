"""Regression tests for the trace validator's handling of malformed
events.

A malformed trace must produce located errors (``traceEvents[i]: ...``)
and a non-zero CLI exit, never an unhandled traceback -- unhashable
values in ``ph``/``s`` used to raise TypeError out of the set-membership
checks.
"""

import json

import pytest

from repro.obs.validate import main, validate_trace


def _event(**overrides):
    event = {"name": "ev", "ph": "i", "pid": 1, "tid": 1, "ts": 5}
    event.update(overrides)
    return event


def test_unhashable_phase_reports_index_not_traceback():
    errors = validate_trace({"traceEvents": [_event(), _event(ph=[])]})
    assert len(errors) == 1
    assert errors[0].startswith("traceEvents[1]:")
    assert "'ph'" in errors[0]


def test_unhashable_metadata_name_reports_index():
    bad = {"name": ["x"], "ph": "M", "pid": 1, "tid": 1,
           "args": {"name": "core"}}
    errors = validate_trace({"traceEvents": [bad]})
    assert errors
    assert all(error.startswith("traceEvents[0]:") for error in errors)


def test_unhashable_instant_scope_reports_index():
    errors = validate_trace({"traceEvents": [_event(s={"g": 1})]})
    assert len(errors) == 1
    assert errors[0].startswith("traceEvents[0]:")
    assert "scope" in errors[0]


def test_error_carries_offending_index_among_valid_events():
    events = [_event(), _event(), _event(ph=[]), _event()]
    errors = validate_trace({"traceEvents": events})
    assert len(errors) == 1
    assert "traceEvents[2]" in errors[0]


def _async(ph, span_id=7, cat="spans", ts=5, **overrides):
    event = {"name": "req", "ph": ph, "cat": cat, "id": span_id,
             "pid": 1, "tid": 1, "ts": ts}
    event.update(overrides)
    return event


def test_balanced_async_pair_is_valid():
    errors = validate_trace(
        {"traceEvents": [_async("b"), _async("e", ts=9)]}
    )
    assert errors == []


def test_nested_async_spans_sharing_id_are_valid():
    events = [_async("b"), _async("b", ts=6, name="seg"),
              _async("e", ts=8, name="seg"), _async("e", ts=9)]
    assert validate_trace({"traceEvents": events}) == []


def test_unclosed_async_begin_reports_its_index():
    events = [_async("b"), _async("e", ts=9), _async("b", ts=10)]
    errors = validate_trace({"traceEvents": events})
    assert len(errors) == 1
    assert errors[0].startswith("traceEvents[2]:")
    assert "never closed" in errors[0]


def test_async_end_without_begin_is_an_error():
    errors = validate_trace({"traceEvents": [_async("e")]})
    assert len(errors) == 1
    assert "without an open matching 'b'" in errors[0]


def test_async_pairs_match_on_cat_and_id_not_name():
    # Same id, different cat: the 'e' does not close the 'b'.
    events = [_async("b", cat="spans"), _async("e", cat="service", ts=9)]
    errors = validate_trace({"traceEvents": events})
    assert len(errors) == 2
    assert any("without an open" in error for error in errors)
    assert any("never closed" in error for error in errors)


@pytest.mark.parametrize("bad_id", [None, True, 1.5, ""])
def test_malformed_async_id_reports_index_not_traceback(bad_id):
    errors = validate_trace({"traceEvents": [_async("b", span_id=bad_id)]})
    assert len(errors) == 1
    assert errors[0].startswith("traceEvents[0]:")
    assert "'id'" in errors[0]


def test_async_event_requires_nonempty_cat():
    errors = validate_trace({"traceEvents": [_async("b", cat="")]})
    assert len(errors) == 1
    assert "cat" in errors[0]


def test_malformed_async_event_does_not_poison_balance_tracking():
    # The shape-invalid 'b' is not entered into the balance books, so
    # the only errors are the shape error and the dangling valid 'b'.
    events = [_async("b", span_id=""), _async("b")]
    errors = validate_trace({"traceEvents": events})
    assert len(errors) == 2
    assert errors[0].startswith("traceEvents[0]:")
    assert "never closed" in errors[1]


def test_counter_track_with_stable_series_is_valid():
    counter = {"name": "occupancy", "ph": "C", "pid": 1, "tid": 1,
               "ts": 1, "args": {"used": 1, "free": 3}}
    later = dict(counter, ts=2, args={"free": 2, "used": 2})
    assert validate_trace({"traceEvents": [counter, later]}) == []


def test_counter_track_series_change_is_an_error():
    counter = {"name": "occupancy", "ph": "C", "pid": 1, "tid": 1,
               "ts": 1, "args": {"used": 1}}
    changed = dict(counter, ts=2, args={"used": 1, "leaked": 0})
    errors = validate_trace({"traceEvents": [counter, changed]})
    assert len(errors) == 1
    assert "changed series" in errors[0]
    assert "traceEvents[1]" in errors[0]
    assert "first defined at traceEvents[0]" in errors[0]


def test_counter_tracks_are_keyed_by_pid_and_name():
    # Same name on another pid is a different track: no error.
    counter = {"name": "occupancy", "ph": "C", "pid": 1, "tid": 1,
               "ts": 1, "args": {"used": 1}}
    other_pid = dict(counter, pid=2, args={"free": 1})
    assert validate_trace({"traceEvents": [counter, other_pid]}) == []


def test_cli_exits_nonzero_on_malformed_trace(tmp_path, capsys):
    trace = tmp_path / "bad.json"
    trace.write_text(json.dumps({"traceEvents": [_event(ph=[])]}))
    assert main([str(trace)]) == 1
    err = capsys.readouterr().err
    assert "traceEvents[0]" in err


def test_cli_exits_zero_on_valid_trace(tmp_path, capsys):
    trace = tmp_path / "good.json"
    trace.write_text(json.dumps({"traceEvents": [_event()]}))
    assert main([str(trace)]) == 0
