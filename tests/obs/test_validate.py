"""Regression tests for the trace validator's handling of malformed
events.

A malformed trace must produce located errors (``traceEvents[i]: ...``)
and a non-zero CLI exit, never an unhandled traceback -- unhashable
values in ``ph``/``s`` used to raise TypeError out of the set-membership
checks.
"""

import json

from repro.obs.validate import main, validate_trace


def _event(**overrides):
    event = {"name": "ev", "ph": "i", "pid": 1, "tid": 1, "ts": 5}
    event.update(overrides)
    return event


def test_unhashable_phase_reports_index_not_traceback():
    errors = validate_trace({"traceEvents": [_event(), _event(ph=[])]})
    assert len(errors) == 1
    assert errors[0].startswith("traceEvents[1]:")
    assert "'ph'" in errors[0]


def test_unhashable_metadata_name_reports_index():
    bad = {"name": ["x"], "ph": "M", "pid": 1, "tid": 1,
           "args": {"name": "core"}}
    errors = validate_trace({"traceEvents": [bad]})
    assert errors
    assert all(error.startswith("traceEvents[0]:") for error in errors)


def test_unhashable_instant_scope_reports_index():
    errors = validate_trace({"traceEvents": [_event(s={"g": 1})]})
    assert len(errors) == 1
    assert errors[0].startswith("traceEvents[0]:")
    assert "scope" in errors[0]


def test_error_carries_offending_index_among_valid_events():
    events = [_event(), _event(), _event(ph=[]), _event()]
    errors = validate_trace({"traceEvents": events})
    assert len(errors) == 1
    assert "traceEvents[2]" in errors[0]


def test_cli_exits_nonzero_on_malformed_trace(tmp_path, capsys):
    trace = tmp_path / "bad.json"
    trace.write_text(json.dumps({"traceEvents": [_event(ph=[])]}))
    assert main([str(trace)]) == 1
    err = capsys.readouterr().err
    assert "traceEvents[0]" in err


def test_cli_exits_zero_on_valid_trace(tmp_path, capsys):
    trace = tmp_path / "good.json"
    trace.write_text(json.dumps({"traceEvents": [_event()]}))
    assert main([str(trace)]) == 0
