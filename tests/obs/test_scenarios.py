"""Every trace scenario builds, records, and produces a valid trace.

Satellite coverage for :mod:`repro.obs.scenarios`: the scenario table
is the ``repro trace`` CLI's menu, so each entry must (a) build a
working system, (b) record a non-trivial timeline, and (c) emit JSON
that passes :mod:`repro.obs.validate` -- the same check CI runs as
``python -m repro.obs.validate trace.json``.
"""

import pytest

from repro.harness.experiment import MeasureWindow, run_microbench
from repro.obs import TraceConfig, Tracer
from repro.obs.scenarios import TRACE_SCENARIOS, trace_scenario
from repro.obs.validate import validate_file, validate_trace

TINY = MeasureWindow(warmup_us=2.0, measure_us=6.0)


@pytest.mark.parametrize("name", sorted(TRACE_SCENARIOS))
def test_scenario_records_a_valid_trace(name):
    scenario = trace_scenario(name)
    tracer = Tracer(TraceConfig())
    run_microbench(scenario.config, scenario.spec, TINY, tracer=tracer)
    payload = tracer.to_dict()
    assert tracer.summary()["events"] > 0
    assert validate_trace(payload) == []


def test_scenario_table_covers_every_figure_sweep():
    # One scenario per paper figure reproduced by a sweep (2-10).
    assert sorted(TRACE_SCENARIOS) == sorted(
        f"fig{n}" for n in range(2, 11)
    )
    for scenario in TRACE_SCENARIOS.values():
        assert scenario.description


def test_fig10_scenario_matches_the_application_study_shape():
    scenario = trace_scenario("fig10")
    assert scenario.config.cores == 8
    assert scenario.spec.reads_per_batch == 4


def test_unknown_scenario_lists_choices():
    with pytest.raises(KeyError, match="fig2"):
        trace_scenario("fig99")


def test_written_scenario_trace_passes_file_validator(tmp_path):
    scenario = trace_scenario("fig3")
    tracer = Tracer(TraceConfig())
    run_microbench(scenario.config, scenario.spec, TINY, tracer=tracer)
    out = tmp_path / "trace.json"
    tracer.write(out)
    assert validate_file(str(out)) == []
