"""Run-ledger unit tests: append, read back, resolve, robustness."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.runlog import LEDGER_FORMAT, RunLedger, digest_of, git_sha


def _ledger(tmp_path) -> RunLedger:
    return RunLedger(tmp_path / "runs")


def test_record_stamps_format_run_id_and_timestamp(tmp_path):
    ledger = _ledger(tmp_path)
    entry = ledger.record({"command": "run", "status": 0})
    assert entry["format"] == LEDGER_FORMAT
    assert entry["timestamp"] > 0
    assert len(entry["run_id"]) == 12
    # The original dict is not mutated.
    assert ledger.path.exists()


def test_entries_round_trip_oldest_first(tmp_path):
    ledger = _ledger(tmp_path)
    for index in range(3):
        ledger.record({"command": "run", "index": index})
    entries = ledger.entries()
    assert [entry["index"] for entry in entries] == [0, 1, 2]


def test_entries_skip_corrupt_and_foreign_lines(tmp_path):
    ledger = _ledger(tmp_path)
    ledger.record({"command": "run", "index": 0})
    with open(ledger.path, "a") as handle:
        handle.write("this is not json\n")
        handle.write(json.dumps({"format": "some-other-tool-v9"}) + "\n")
        handle.write("\n")
    ledger.record({"command": "run", "index": 1})
    assert [entry["index"] for entry in ledger.entries()] == [0, 1]


def test_resolve_by_index_and_prefix(tmp_path):
    ledger = _ledger(tmp_path)
    first = ledger.record({"command": "run", "index": 0})
    second = ledger.record({"command": "figure", "index": 1})
    assert ledger.resolve("0")["index"] == 0
    assert ledger.resolve("-1")["index"] == 1
    assert ledger.resolve(first["run_id"])["index"] == 0
    assert ledger.resolve(second["run_id"][:8])["index"] == 1


def test_resolve_errors(tmp_path):
    ledger = _ledger(tmp_path)
    with pytest.raises(ConfigError, match="empty"):
        ledger.resolve("0")
    ledger.record({"command": "run"})
    with pytest.raises(ConfigError, match="out of range"):
        ledger.resolve("5")
    with pytest.raises(ConfigError, match="no ledger entry"):
        ledger.resolve("zzzzzz")


def test_record_survives_unwritable_root(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("a file where the directory should go")
    ledger = RunLedger(target / "runs")
    assert ledger.record({"command": "run"}) is None  # no raise


def test_enabled_honors_no_ledger_env():
    assert RunLedger.enabled({}) is True
    assert RunLedger.enabled({"REPRO_NO_LEDGER": "1"}) is False


def test_env_var_relocates_default_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "elsewhere"))
    assert RunLedger().root == tmp_path / "elsewhere"


def test_digest_of_is_order_insensitive():
    assert digest_of({"a": 1, "b": 2}) == digest_of({"b": 2, "a": 1})
    assert digest_of({"a": 1}) != digest_of({"a": 2})


def test_git_sha_in_this_checkout_is_hex_or_none():
    sha = git_sha()
    assert sha is None or (len(sha) == 40 and int(sha, 16) >= 0)
