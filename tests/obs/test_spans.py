"""Unit tests for the request-scoped span layer (repro.obs.spans).

The ledger's contract is arithmetic, so the tests are arithmetic:
segments must tile the request lifetime exactly (conservation), the
exemplar reservoirs must be deterministic (worst-K with stable ties,
stride-subsampled stratification), and the rendered Chrome-trace
async spans must satisfy the validator.
"""

import json

import pytest

from repro.obs import MetricsRegistry, TraceConfig, Tracer
from repro.obs.spans import (
    SEGMENTS,
    RequestSpan,
    SpanConservationError,
    SpanLedger,
    emit_exemplar_trace,
)
from repro.obs.validate import validate_trace
from repro.sim.trace import ProbeSet


def _closed(ledger, key=1, core=0, arrive=0, marks=(), finish=100):
    """Open a span, replay ``marks`` (name, tick), close at ``finish``."""
    span = ledger.open(key, core, arrive)
    for name, tick in marks:
        span.mark(name, tick)
    ledger.close(span, finish)
    return span


# -- RequestSpan cursor semantics -----------------------------------------


def test_mark_closes_open_segment_and_opens_next():
    span = RequestSpan(seq=1, key=7, core_id=0, arrived_at=100)
    span.mark("sq", 130)
    span.mark("device", 150)
    span._close(250)
    assert span.segments == [
        ["queue", 100, 130], ["sq", 130, 150], ["device", 150, 250],
    ]
    assert span.sojourn == 150
    assert span.durations() == {
        "queue": 30, "sq": 20, "device": 100, "cq": 0, "work": 0,
    }


def test_zero_width_transition_back_merges_with_previous_segment():
    span = RequestSpan(seq=1, key=7, core_id=0, arrived_at=0)
    span.mark("work", 10)
    span.mark("sq", 40)
    # sq..device..back-to-work, all at tick 40: the empty excursion
    # re-opens the previous segment instead of recording zero slices.
    span.mark("work", 40)
    span._close(60)
    assert span.segments == [["queue", 0, 10], ["work", 10, 60]]


def test_unknown_segment_name_raises():
    span = RequestSpan(seq=1, key=7, core_id=0, arrived_at=0)
    with pytest.raises(SpanConservationError, match="unknown span segment"):
        span.mark("dma", 10)


def test_backwards_stamp_raises():
    span = RequestSpan(seq=1, key=7, core_id=0, arrived_at=50)
    span.mark("work", 80)
    with pytest.raises(SpanConservationError, match="moved backwards"):
        span.mark("sq", 70)


def test_close_before_open_segment_raises():
    ledger = SpanLedger()
    span = ledger.open(1, 0, 50)
    with pytest.raises(SpanConservationError, match="closed before"):
        ledger.close(span, 40)


def test_payload_round_trips_through_json_bit_identically():
    span = RequestSpan(seq=3, key=11, core_id=2, arrived_at=5)
    span.mark("sq", 9)
    span.mark("work", 21)
    span._close(30)
    payload = span.to_payload()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["sojourn_ticks"] == 25
    assert payload["segments"] == [
        ["queue", 5, 9], ["sq", 9, 21], ["work", 21, 30],
    ]


# -- ledger conservation ---------------------------------------------------


def test_close_asserts_per_request_conservation():
    ledger = SpanLedger()
    span = ledger.open(1, 0, 0)
    span.mark("work", 10)
    span.segments[0][1] = 3  # tear a hole in the tiling
    with pytest.raises(SpanConservationError, match="do not tile"):
        ledger.close(span, 20)
    assert ledger.conservation_checks == 1
    assert ledger.closed == 0


def test_ledger_counts_and_bookkeeping_check():
    ledger = SpanLedger()
    _closed(ledger, marks=[("work", 40)])
    open_span = ledger.open(2, 0, 50)
    assert (ledger.opened, ledger.closed, ledger.open_count) == (2, 1, 1)
    assert ledger.check() is None
    assert ledger.summary()["in_flight"] == 1
    del open_span


def test_check_flags_cooked_books():
    ledger = SpanLedger()
    _closed(ledger)
    ledger.conservation_checks = 0
    assert "conservation checked" in ledger.check()


def test_attribution_aggregate_conservation_is_tick_exact():
    ledger = SpanLedger(k_slowest=4)
    for i in range(20):
        _closed(
            ledger, key=i, core=i % 2, arrive=i * 100,
            marks=[
                ("sq", i * 100 + 10), ("device", i * 100 + 30),
                ("cq", i * 100 + 80), ("work", i * 100 + 90),
            ],
            finish=i * 100 + 95 + i,
        )
    table = ledger.attribution()
    conservation = table["conservation"]
    assert conservation["sojourn_ticks"] == conservation["segments_ticks"]
    assert conservation["checked"] == conservation["closed"] == 20
    assert table["requests"] == 20
    shares = sum(row["share"] for row in table["segments"].values())
    assert shares == pytest.approx(1.0)
    for rows in table["per_core"].values():
        assert sum(r["share"] for r in rows.values()) == pytest.approx(1.0)
    assert set(table["segments"]) == set(SEGMENTS)


def test_attribution_raises_when_aggregation_loses_a_request():
    ledger = SpanLedger()
    _closed(ledger, marks=[("work", 50)])
    ledger.sojourn.record(17)  # a sojourn no segment stats ever saw
    with pytest.raises(SpanConservationError, match="aggregate conservation"):
        ledger.attribution()


# -- exemplar reservoirs ---------------------------------------------------


def test_k_slowest_keeps_worst_with_deterministic_ties():
    ledger = SpanLedger(k_slowest=2)
    sojourns = [30, 50, 50, 10, 50, 40]
    for i, sojourn in enumerate(sojourns):
        _closed(ledger, key=i, arrive=0, finish=sojourn)
    worst = ledger.slowest()
    assert [span.sojourn for span in worst] == [50, 50]
    # Three requests tie at 50; the two earliest arrivals (seq 2, 3)
    # win, worst-first ordering breaks the tie by arrival order too.
    assert [span.seq for span in worst] == [2, 3]


def test_k_slowest_requires_positive_k():
    with pytest.raises(Exception, match="k_slowest"):
        SpanLedger(k_slowest=0)


def test_stratified_picks_percentile_neighbours():
    ledger = SpanLedger()
    for i in range(100):
        _closed(ledger, key=i, arrive=0, finish=i + 1)
    strata = ledger.stratified()
    assert set(strata) == {"p50", "p90", "p99"}
    assert strata["p50"].sojourn < strata["p90"].sojourn
    assert strata["p90"].sojourn < strata["p99"].sojourn
    assert strata["p99"].sojourn >= 99


def test_retention_buffer_subsamples_deterministically(monkeypatch):
    monkeypatch.setattr("repro.obs.spans._MAX_RETAINED", 8)
    ledger = SpanLedger()
    for i in range(40):
        _closed(ledger, key=i, arrive=0, finish=i + 1)
    retained = ledger._retained
    assert len(retained) <= 8
    # Stride doubling keeps an arithmetic subsequence -- evenly spaced
    # seqs, not a random sample.
    seqs = [span.seq for span in retained]
    strides = {b - a for a, b in zip(seqs, seqs[1:])}
    assert len(strides) == 1


def test_reset_window_drops_warmup_exemplars_only():
    ledger = SpanLedger(k_slowest=4)
    _closed(ledger, key=1, arrive=0, finish=1000)  # warmup monster
    ledger.reset_window()
    assert ledger.slowest() == [] and ledger.stratified() == {}
    _closed(ledger, key=2, arrive=0, finish=10)
    assert [span.key for span in ledger.slowest()] == [2]
    assert ledger.closed == 2  # lifetime counters survive the reset
    assert ledger.check() is None


# -- probes / metrics integration -----------------------------------------


def test_windowed_probes_exclude_warmup_from_attribution():
    probes = ProbeSet()
    ledger = SpanLedger(probes)
    ledger.prepare_cores([0])
    _closed(ledger, key=1, arrive=0, finish=10_000)  # warmup outlier
    probes.set_window_active(True)
    _closed(ledger, key=2, arrive=0, marks=[("work", 30)], finish=50)
    _closed(ledger, key=3, arrive=0, marks=[("work", 10)], finish=50)
    probes.set_window_active(False)
    table = ledger.attribution()
    assert table["requests"] == 2
    assert table["conservation"]["sojourn_ticks"] == 100


def test_prepare_cores_preactivates_per_core_stats():
    probes = ProbeSet()
    ledger = SpanLedger(probes)
    ledger.prepare_cores([0, 1])
    probes.set_window_active(True)
    # core 1's first completion lands inside the window; without
    # prepare_cores its stats would have missed activation and the
    # per-core table would silently disagree with the global one.
    _closed(ledger, key=1, core=1, arrive=0, finish=40)
    probes.set_window_active(False)
    table = ledger.attribution()
    core1 = table["per_core"]["core1"]
    assert sum(r["count"] for r in core1.values()) > 0
    assert sum(r["total_ns"] for r in core1.values()) == pytest.approx(
        table["sojourn"]["total_ns"]
    )


def test_register_metrics_exposes_ledger_probes():
    registry = MetricsRegistry()
    ledger = SpanLedger()
    _closed(ledger, marks=[("work", 60)])
    ledger.register_metrics(registry, "spans")
    snapshot = registry.snapshot(now=1000)
    assert snapshot["spans.opened"]["value"] == 1
    assert snapshot["spans.closed"]["value"] == 1
    assert snapshot["spans.in_flight"]["value"] == 0
    assert snapshot["spans.conservation_checks"]["value"] == 1
    assert snapshot["spans.work"]["count"] == 1


# -- exemplar trace rendering ---------------------------------------------


def _ledger_with_traffic():
    ledger = SpanLedger(k_slowest=3)
    for i in range(12):
        base = i * 1_000_000
        _closed(
            ledger, key=i, core=i % 2, arrive=base,
            marks=[
                ("sq", base + 100_000), ("device", base + 200_000),
                ("cq", base + 500_000), ("work", base + 600_000),
            ],
            finish=base + 700_000 + i * 10_000,
        )
    return ledger


def test_emit_trace_renders_validator_clean_async_spans():
    ledger = _ledger_with_traffic()
    tracer = Tracer(TraceConfig(tracks=frozenset({"spans"})))
    emitted = ledger.emit_trace(tracer, pid=5)
    assert emitted >= 3
    assert validate_trace(tracer.to_dict()) == []
    begins = [e for e in tracer.events if e.get("ph") == "b"]
    ends = [e for e in tracer.events if e.get("ph") == "e"]
    assert len(begins) == len(ends)
    # One root span + one per segment, per tree, grouped by seq.
    roots = [e for e in begins if e["name"].startswith("request ")]
    assert len(roots) == emitted


def test_emit_trace_deduplicates_slowest_and_stratified_overlap():
    ledger = SpanLedger(k_slowest=3)
    for i in range(3):
        _closed(ledger, key=i, arrive=0, marks=[("work", 10)], finish=20 + i)
    payload = ledger.exemplar_payload()
    stratified_seqs = {t["seq"] for t in payload["stratified"].values()}
    slowest_seqs = {t["seq"] for t in payload["slowest"]}
    assert stratified_seqs <= slowest_seqs  # fully overlapping by design
    tracer = Tracer(TraceConfig(tracks=frozenset({"spans"})))
    emitted = emit_exemplar_trace(tracer, payload, pid=5)
    assert emitted == len(slowest_seqs)
    assert validate_trace(tracer.to_dict()) == []


def test_emit_trace_from_json_round_trip_is_identical():
    ledger = _ledger_with_traffic()
    payload = ledger.exemplar_payload()
    fresh = Tracer(TraceConfig(tracks=frozenset({"spans"})))
    cooked = Tracer(TraceConfig(tracks=frozenset({"spans"})))
    emit_exemplar_trace(fresh, payload, pid=5)
    emit_exemplar_trace(cooked, json.loads(json.dumps(payload)), pid=5)
    assert fresh.events == cooked.events


def test_emit_trace_is_noop_without_tracer():
    assert emit_exemplar_trace(None, {"slowest": []}, pid=5) == 0
