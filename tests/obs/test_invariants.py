"""Invariant-sanitizer tests: clean runs pass, corrupted state is loud,
and a monitored run's results are bit-for-bit unmonitored results."""

import pytest

from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.errors import SimulationError
from repro.harness.applications import run_application
from repro.harness.experiment import MeasureWindow, run_microbench
from repro.host.system import System
from repro.obs import InvariantMonitor, InvariantViolation, TeeTracer
from repro.obs.scenarios import TRACE_SCENARIOS
from repro.testing import enforce_invariants
from repro.units import us
from repro.workloads.microbench import MicrobenchSpec, install_microbench

TINY = MeasureWindow(warmup_us=2.0, measure_us=8.0)


def _config(mechanism=AccessMechanism.PREFETCH, threads=4, cores=1):
    return SystemConfig(
        mechanism=mechanism,
        cores=cores,
        threads_per_core=threads,
        device=DeviceConfig(total_latency_us=1.0),
    )


def _attached_system(config=None):
    monitor = InvariantMonitor(interval_ticks=us(1))
    system = System(config or _config(), tracer=monitor)
    monitor.attach(system)
    install_microbench(system, MicrobenchSpec(work_count=100),
                       (config or _config()).threads_per_core)
    return monitor, system


# ---------------------------------------------------------------------------
# The acceptance grid: every figure scenario passes under the monitor
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(TRACE_SCENARIOS))
def test_every_figure_scenario_passes_invariants(name):
    scenario = TRACE_SCENARIOS[name]
    result = run_microbench(
        scenario.config, scenario.spec, TINY, check_invariants=True
    )
    summary = result.report["invariants"]
    assert summary["checks_run"] >= 2  # periodic watch + final check
    assert summary["components"] >= 3


@pytest.mark.parametrize(
    "mechanism",
    [AccessMechanism.PREFETCH, AccessMechanism.SOFTWARE_QUEUE],
)
def test_applications_pass_invariants(mechanism):
    run = run_application(
        _config(mechanism, threads=2), "bloom", check_invariants=True
    )
    assert run.operations > 0


# ---------------------------------------------------------------------------
# Passivity: monitored results are bit-for-bit unmonitored results
# ---------------------------------------------------------------------------

def test_monitor_is_passive():
    spec = MicrobenchSpec(work_count=100, reads_per_batch=2)
    plain = run_microbench(_config(), spec, TINY)
    checked = run_microbench(_config(), spec, TINY, check_invariants=True)
    assert checked.stats.work_instructions == plain.stats.work_instructions
    assert checked.stats.accesses == plain.stats.accesses
    assert checked.work_ipc == plain.work_ipc


# ---------------------------------------------------------------------------
# Violations are loud and carry diagnostics
# ---------------------------------------------------------------------------

def test_corrupted_rob_counter_is_caught():
    monitor, system = _attached_system()
    system.run_window(TINY.warmup_ticks, TINY.measure_ticks)
    system.cores[0].rob.allocated_slots += 7
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.check_now()
    violation = excinfo.value
    assert violation.component == "core0.rob"
    assert violation.tick == system.sim.now
    assert "imbalance" in str(violation)


def test_corrupted_pcie_counter_is_caught_by_watch_process():
    monitor, system = _attached_system()

    def corrupt():
        yield system.sim.timeout(TINY.warmup_ticks)
        system.link.upstream.tlps_sent += 3

    system.sim.process(corrupt(), name="saboteur")
    with pytest.raises(InvariantViolation) as excinfo:
        system.run_window(TINY.warmup_ticks, TINY.measure_ticks)
    assert excinfo.value.component == "pcie.upstream"


def test_corrupted_swq_credits_are_caught():
    config = _config(AccessMechanism.SOFTWARE_QUEUE, threads=2)
    monitor, system = _attached_system(config)
    system.run_window(TINY.warmup_ticks, TINY.measure_ticks)
    system.queue_pairs[0].descriptors_enqueued += 1
    with pytest.raises(InvariantViolation, match="descriptor credits"):
        monitor.check_now()


def test_clock_regression_is_caught():
    monitor, system = _attached_system()
    system.run_window(TINY.warmup_ticks, TINY.measure_ticks)
    monitor._last_tick = system.sim.now + 1
    with pytest.raises(InvariantViolation, match="backwards"):
        monitor.check_now()


def test_violation_carries_recent_trace_events():
    monitor, system = _attached_system()
    system.run_window(TINY.warmup_ticks, TINY.measure_ticks)
    assert len(monitor.recent_events) > 0
    system.cores[0].lfb._slots.in_use = 99  # beyond capacity
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.check_now()
    assert excinfo.value.recent_events
    assert "recent events:" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Wiring
# ---------------------------------------------------------------------------

def test_attach_twice_raises():
    monitor, system = _attached_system()
    with pytest.raises(SimulationError, match="already attached"):
        monitor.attach(system)


def test_check_now_requires_attachment():
    with pytest.raises(SimulationError, match="not attached"):
        InvariantMonitor().check_now()


def test_bad_interval_rejected():
    with pytest.raises(SimulationError):
        InvariantMonitor(interval_ticks=0)


def test_tee_tracer_forwards_to_all_sinks():
    class Sink:
        def __init__(self):
            self.calls = []

        def wants(self, track):
            return track == "rob"

        def complete(self, *args, **kwargs):
            self.calls.append(("complete", args))

        def instant(self, *args, **kwargs):
            self.calls.append(("instant", args))

        def counter(self, *args, **kwargs):
            self.calls.append(("counter", args))

        def process_name(self, pid, name):
            self.calls.append(("process_name", (pid, name)))

        def thread_name(self, pid, tid, name):
            self.calls.append(("thread_name", (pid, tid, name)))

    first, second = Sink(), Sink()
    tee = TeeTracer((first, None, second))
    assert tee.wants("rob") and not tee.wants("pcie")
    tee.complete("rob", 1, 2, "x", 0, 5)
    tee.instant("rob", 1, 2, "y", 3)
    tee.counter("rob", 1, "z", 4, {"v": 1})
    tee.process_name(1, "cores")
    tee.thread_name(1, 2, "t0")
    assert first.calls == second.calls
    assert len(first.calls) == 5


def test_monitor_tee_returns_self_without_tracer():
    monitor = InvariantMonitor()
    assert monitor.tee(None) is monitor
    tee = monitor.tee(object.__new__(TeeTracer))
    assert isinstance(tee, TeeTracer)


def test_enforce_invariants_forces_harness_checks():
    spec = MicrobenchSpec(work_count=100)
    with enforce_invariants():
        result = run_microbench(_config(), spec, TINY)
        assert "invariants" in result.report
    result = run_microbench(_config(), spec, TINY)
    assert "invariants" not in result.report
