"""Suite-wide fixtures.

Every test gets a throwaway run-ledger directory: CLI tests call
``repro.cli.main`` directly, and without this redirect they would
append provenance records to the developer's real ``.repro_runs/``.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_run_ledger(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "repro_runs"))
