"""Unit tests for the spin barrier and the hash utilities."""

import pytest

from repro.config import AccessMechanism, SystemConfig
from repro.errors import ConfigError
from repro.host.system import System
from repro.workloads.hashing import hash_with_seed, mix64
from repro.workloads.spin import SpinBarrier


def test_mix64_is_deterministic_and_64bit():
    assert mix64(12345) == mix64(12345)
    assert 0 <= mix64(2**63) < 2**64
    assert mix64(1) != mix64(2)


def test_hash_family_members_are_independent_ish():
    values = {hash_with_seed(42, seed) for seed in range(8)}
    assert len(values) == 8


def test_mix64_distributes_low_bits():
    # Consecutive inputs should not produce consecutive outputs.
    outs = [mix64(i) % 64 for i in range(256)]
    assert len(set(outs)) > 32


def test_barrier_requires_parties():
    with pytest.raises(ConfigError):
        SpinBarrier(0)


def test_barrier_synchronizes_threads():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH, threads_per_core=3)
    system = System(config)
    barrier = SpinBarrier(3)
    log = []

    def factory_for(tag, delay_work):
        def factory(ctx):
            def body():
                yield from ctx.work(delay_work)
                log.append(("before", tag))
                yield from barrier.wait(ctx)
                log.append(("after", tag))
            return body()
        return factory

    for tag, work in (("a", 10), ("b", 500), ("c", 2000)):
        system.spawn(0, factory_for(tag, work))
    system.run_to_completion(limit_ticks=10**10)
    befores = [i for i, (phase, _) in enumerate(log) if phase == "before"]
    afters = [i for i, (phase, _) in enumerate(log) if phase == "after"]
    assert max(befores) < min(afters)


def test_barrier_is_reusable_across_generations():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH, threads_per_core=2)
    system = System(config)
    barrier = SpinBarrier(2)
    rounds = {"a": 0, "b": 0}

    def factory_for(tag):
        def factory(ctx):
            def body():
                for _ in range(5):
                    yield from barrier.wait(ctx)
                    rounds[tag] += 1
            return body()
        return factory

    system.spawn(0, factory_for("a"))
    system.spawn(0, factory_for("b"))
    system.run_to_completion(limit_ticks=10**10)
    assert rounds == {"a": 5, "b": 5}
    assert barrier.generation == 5
