"""Tests for the pointer-chase workload."""

import pytest

from repro.config import AccessMechanism, BackingStore, DeviceConfig, SystemConfig
from repro.errors import ConfigError
from repro.host.system import System
from repro.memory import FlatMemory
from repro.units import to_us
from repro.workloads.pointer_chase import (
    PointerChain,
    PointerChaseParams,
    install_pointer_chase,
)

SMALL = PointerChaseParams(nodes=64, hops_per_thread=32, work_count=50)


def test_params_validation():
    with pytest.raises(ConfigError):
        PointerChaseParams(nodes=1)
    with pytest.raises(ConfigError):
        PointerChaseParams(hops_per_thread=0)


def test_chain_is_a_single_cycle():
    world = FlatMemory()
    chain = PointerChain(SMALL, base_addr=0, world=world)
    seen = set()
    node = chain.head
    for _ in range(SMALL.nodes):
        assert node not in seen
        seen.add(node)
        node = world.read_word(node)
    assert node == chain.head  # closed cycle covering every node
    assert len(seen) == SMALL.nodes


def test_timed_walk_matches_functional_walk():
    for mechanism, backing in (
        (AccessMechanism.ON_DEMAND, BackingStore.DRAM),
        (AccessMechanism.PREFETCH, BackingStore.DEVICE),
        (AccessMechanism.SOFTWARE_QUEUE, BackingStore.DEVICE),
    ):
        config = SystemConfig(
            mechanism=mechanism, backing=backing, threads_per_core=2
        )
        system = System(config)
        chains = install_pointer_chase(system, SMALL, 2)
        handles = {
            (core, slot): thread
            for (core, slot), thread in zip(
                sorted(chains), system.runtimes[0].threads
            )
        }
        system.run_to_completion(limit_ticks=10**12)
        for key, chain in chains.items():
            expected = chain.walk_functional(SMALL.hops_per_thread)
            assert handles[key].result == expected


def test_serial_chain_cannot_be_hidden_within_a_thread():
    """One thread's hops serialize at full device latency regardless of
    mechanism -- the next address is unknown until the load returns."""
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        threads_per_core=1,
        device=DeviceConfig(total_latency_us=1.0),
    )
    system = System(config)
    install_pointer_chase(system, SMALL, 1)
    ticks = system.run_to_completion(limit_ticks=10**12)
    # 32 hops x ~1 us each: nothing overlapped.
    assert to_us(ticks) > 0.95 * SMALL.hops_per_thread


def test_parallel_chains_overlap_across_threads():
    """The paper's thesis: software parallelism across threads hides
    what no hardware can hide within one chain."""

    def run(threads):
        config = SystemConfig(
            mechanism=AccessMechanism.PREFETCH,
            threads_per_core=threads,
            device=DeviceConfig(total_latency_us=1.0),
        )
        system = System(config)
        install_pointer_chase(system, SMALL, threads)
        return system.run_to_completion(limit_ticks=10**12)

    one = run(1)
    eight = run(8)
    # 8x the total hops in barely more wall time.
    assert eight < 1.4 * one
