"""Unit tests for the microbenchmark workload."""

import pytest

from repro.config import AccessMechanism, SystemConfig
from repro.errors import ConfigError
from repro.host.system import System
from repro.units import us
from repro.workloads.microbench import (
    MicrobenchSpec,
    _address_stream,
    install_microbench,
)


def test_spec_validation():
    with pytest.raises(ConfigError):
        MicrobenchSpec(work_count=-1)
    with pytest.raises(ConfigError):
        MicrobenchSpec(reads_per_batch=0)
    with pytest.raises(ConfigError):
        MicrobenchSpec(iterations=0)
    with pytest.raises(ConfigError):
        MicrobenchSpec(reads_per_batch=4, lines_per_thread=2)


def test_address_stream_cycles_distinct_lines():
    stream = _address_stream(base=0x1000, line_bytes=64, lines=4)
    addrs = [next(stream) for _ in range(8)]
    assert addrs[:4] == [0x1000, 0x1040, 0x1080, 0x10C0]
    assert addrs[4:] == addrs[:4]  # wraps around
    assert len(set(addrs[:4])) == 4


def test_address_stream_phase_offset():
    stream = _address_stream(base=0, line_bytes=64, lines=4, start_index=2)
    assert next(stream) == 0x80


def test_finite_iterations_complete():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH, threads_per_core=3)
    system = System(config)
    spec = MicrobenchSpec(work_count=100, iterations=5)
    install_microbench(system, spec, threads_per_core=3)
    system.run_to_completion(limit_ticks=10**10)
    assert system.device.requests_served == 3 * 5


def test_mlp_variant_issues_batched_reads():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH, threads_per_core=1)
    system = System(config)
    spec = MicrobenchSpec(work_count=100, reads_per_batch=4, iterations=3)
    install_microbench(system, spec, threads_per_core=1)
    system.run_to_completion(limit_ticks=10**10)
    assert system.device.requests_served == 4 * 3


def test_every_access_misses_the_l1():
    """The paper: "each access goes to a different cache line"."""
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH, threads_per_core=4)
    system = System(config)
    install_microbench(system, MicrobenchSpec(work_count=200), 4)
    system.run_window(us(20), us(50))
    # The only L1 hits are the post-prefetch loads; the accesses
    # themselves never re-hit a previously used line, so device
    # requests track the number of distinct-line fills (allowing for
    # fills still in flight when the window closes).
    fills = system.cores[0].memsys.lfb.fills
    served = system.device.requests_served
    assert 0 <= served - fills <= system.config.cpu.lfb_entries


def test_work_counter_counts_only_work_instructions():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH, threads_per_core=1)
    system = System(config)
    spec = MicrobenchSpec(work_count=128, iterations=4)
    install_microbench(system, spec, threads_per_core=1)
    system.work_counter.active = True
    system.run_to_completion(limit_ticks=10**10)
    system.sim.run()
    assert system.work_counter.total == 128 * 4


def test_threads_get_disjoint_regions():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH, threads_per_core=2)
    system = System(config)
    # Fewer iterations than the region size: no wrap-around, so every
    # access is a distinct line and must reach the device.
    spec = MicrobenchSpec(work_count=50, iterations=200, lines_per_thread=256)
    install_microbench(system, spec, threads_per_core=2)
    system.run_to_completion(limit_ticks=10**11)
    assert system.device.requests_served == 2 * 200
