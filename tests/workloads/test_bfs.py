"""Unit tests for the BFS workload."""

from collections import deque

import networkx as nx
import pytest

from repro.config import AccessMechanism, BackingStore, SystemConfig
from repro.errors import ConfigError
from repro.host.system import System
from repro.memory import FlatMemory
from repro.workloads.bfs import (
    BfsParams,
    CsrGraph,
    generate_graph,
    install_bfs,
)

SMALL = BfsParams(vertices=96, average_degree=4, work_count=20)


def reference_distances(adjacency, source):
    distance = [-1] * len(adjacency)
    distance[source] = 0
    frontier = deque([source])
    while frontier:
        vertex = frontier.popleft()
        for neighbor in adjacency[vertex]:
            if distance[neighbor] < 0:
                distance[neighbor] = distance[vertex] + 1
                frontier.append(neighbor)
    return distance


def test_params_validation():
    with pytest.raises(ConfigError):
        BfsParams(vertices=1)
    with pytest.raises(ConfigError):
        BfsParams(source=9999)
    with pytest.raises(ConfigError):
        BfsParams(average_degree=0)


def test_generated_graph_is_connected_and_undirected():
    adjacency = generate_graph(SMALL)
    assert len(adjacency) == SMALL.vertices
    for u, neighbors in enumerate(adjacency):
        for v in neighbors:
            assert u in adjacency[v], "edge must be symmetric"
        assert u not in neighbors, "no self loops"
    distances = reference_distances(adjacency, 0)
    assert all(d >= 0 for d in distances), "graph must be connected"


def test_generation_is_deterministic():
    a = generate_graph(SMALL)
    b = generate_graph(SMALL)
    assert a == b
    c = generate_graph(BfsParams(vertices=96, average_degree=4, seed=7))
    assert a != c


def test_csr_image_roundtrips():
    adjacency = generate_graph(SMALL)
    world = FlatMemory()
    graph = CsrGraph(adjacency, base_addr=0, world=world)
    # Rebuild adjacency from the functional memory image.
    for vertex in range(graph.n):
        start = world.read_word(vertex * 8)
        end = world.read_word((vertex + 1) * 8)
        stored = [
            world.read_word(graph._edges_base + i * 8) for i in range(start, end)
        ]
        assert stored == adjacency[vertex]


def test_parallel_traversal_matches_networkx():
    adjacency = generate_graph(SMALL)
    reference = nx.single_source_shortest_path_length(
        nx.Graph(
            (u, v) for u, neighbors in enumerate(adjacency) for v in neighbors
        ),
        SMALL.source,
    )
    for mechanism, backing, threads in (
        (AccessMechanism.ON_DEMAND, BackingStore.DRAM, 1),
        (AccessMechanism.PREFETCH, BackingStore.DEVICE, 4),
        (AccessMechanism.SOFTWARE_QUEUE, BackingStore.DEVICE, 4),
    ):
        config = SystemConfig(
            mechanism=mechanism, backing=backing, threads_per_core=threads
        )
        system = System(config)
        runs = install_bfs(system, SMALL, threads_per_core=threads)
        system.run_to_completion(limit_ticks=10**12)
        for vertex, distance in reference.items():
            assert runs[0].distance[vertex] == distance


def test_multicore_runs_one_traversal_per_core():
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH, cores=2, threads_per_core=2
    )
    system = System(config)
    runs = install_bfs(system, SMALL, threads_per_core=2)
    system.run_to_completion(limit_ticks=10**12)
    assert len(runs) == 2
    assert runs[0].distance == runs[1].distance
    assert runs[0].graph.base_addr != runs[1].graph.base_addr


def test_more_threads_do_not_change_the_answer():
    expected = None
    for threads in (1, 3, 8):
        config = SystemConfig(
            mechanism=AccessMechanism.PREFETCH, threads_per_core=threads
        )
        system = System(config)
        runs = install_bfs(system, SMALL, threads_per_core=threads)
        system.run_to_completion(limit_ticks=10**12)
        if expected is None:
            expected = runs[0].distance
        else:
            assert runs[0].distance == expected
