"""Unit tests for the Bloom filter workload."""

import pytest

from repro.config import AccessMechanism, BackingStore, SystemConfig
from repro.errors import ConfigError
from repro.host.system import System
from repro.memory import FlatMemory
from repro.workloads.bloom import (
    BloomFilter,
    BloomParams,
    install_bloom,
    make_query_keys,
)

SMALL = BloomParams(items=512, queries_per_thread=16)


def test_params_validation():
    with pytest.raises(ConfigError):
        BloomParams(items=0)
    with pytest.raises(ConfigError):
        BloomParams(hash_count=9)
    with pytest.raises(ConfigError):
        BloomParams(queries_per_thread=0)


def test_bits_rounded_to_words():
    params = BloomParams(items=100, bits_per_item=10)
    assert params.bits % 64 == 0
    assert params.bits >= 1000


def test_no_false_negatives():
    world = FlatMemory()
    bloom = BloomFilter(SMALL, base_addr=0, world=world)
    keys = range(0, 200)
    bloom.populate(keys)
    assert all(bloom.contains_functional(key) for key in keys)


def test_absent_keys_mostly_rejected():
    world = FlatMemory()
    params = BloomParams(items=256, bits_per_item=10, queries_per_thread=16)
    bloom = BloomFilter(params, base_addr=0, world=world)
    bloom.populate(range(64))
    false_positives = sum(
        bloom.contains_functional(key) for key in range(10_000, 10_200)
    )
    # ~64 items in a 2560-bit filter: false-positive rate well under 10%.
    assert false_positives < 20


def test_query_keys_alternate_present_absent():
    keys = make_query_keys(SMALL, thread_seed=3)
    assert len(keys) == 16
    assert all(key < SMALL.items for key in keys[0::2])
    assert all(key >= SMALL.items for key in keys[1::2])


def test_timed_lookup_agrees_with_functional_oracle():
    config = SystemConfig(
        mechanism=AccessMechanism.ON_DEMAND, backing=BackingStore.DRAM
    )
    system = System(config)
    results = install_bloom(system, SMALL, threads_per_core=2)
    system.run_to_completion(limit_ticks=10**11)
    for (core, slot), observed in results.items():
        keys = make_query_keys(SMALL, thread_seed=core * 1000 + slot)
        assert len(observed) == len(keys)
        # Present keys (even positions) must always hit.
        for position in range(0, len(keys), 2):
            assert observed[position] is True


def test_device_and_baseline_agree():
    params = BloomParams(items=512, queries_per_thread=12)
    outcomes = []
    for backing, mechanism in (
        (BackingStore.DRAM, AccessMechanism.ON_DEMAND),
        (BackingStore.DEVICE, AccessMechanism.PREFETCH),
        (BackingStore.DEVICE, AccessMechanism.SOFTWARE_QUEUE),
    ):
        config = SystemConfig(
            mechanism=mechanism, backing=backing, threads_per_core=2
        )
        system = System(config)
        results = install_bloom(system, params, threads_per_core=2)
        system.run_to_completion(limit_ticks=10**11)
        outcomes.append(
            {key: tuple(value) for key, value in sorted(results.items())}
        )
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_each_core_gets_its_own_filter():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH, cores=2)
    system = System(config)
    install_bloom(system, SMALL, threads_per_core=1)
    # Each core allocated a filter in its own partition.
    assert system._device_bumps[0] > system.map.partition_base(0)
    assert system._device_bumps[1] > system.map.partition_base(1)
