"""Unit tests for the Memcached lookup workload."""

import pytest

from repro.config import AccessMechanism, BackingStore, SystemConfig
from repro.errors import ConfigError
from repro.host.system import System
from repro.memory import FlatMemory
from repro.workloads.memcached import (
    KvStore,
    MemcachedParams,
    install_memcached,
    make_get_keys,
    value_word,
)

SMALL = MemcachedParams(items=128, buckets=64, gets_per_thread=8)


def test_params_validation():
    with pytest.raises(ConfigError):
        MemcachedParams(items=0)
    with pytest.raises(ConfigError):
        MemcachedParams(value_bytes=100)  # not a multiple of 64
    with pytest.raises(ConfigError):
        MemcachedParams(gets_per_thread=0)


def test_value_lines():
    assert MemcachedParams(value_bytes=256).value_lines == 4


def test_functional_get_returns_stored_value():
    world = FlatMemory()
    store = KvStore(SMALL, base_addr=0, world=world)
    store.populate(range(SMALL.items))
    for key in (0, 1, 63, 127):
        value = store.get_functional(key)
        assert value is not None
        for index, word in enumerate(value):
            assert word == value_word(key, index)


def test_functional_get_misses_unknown_key():
    world = FlatMemory()
    store = KvStore(SMALL, base_addr=0, world=world)
    store.populate(range(SMALL.items))
    assert store.get_functional(99999) is None


def test_chains_are_built():
    world = FlatMemory()
    store = KvStore(SMALL, base_addr=0, world=world)
    store.populate(range(SMALL.items))
    # 128 keys into 64 buckets: at least one chain of length >= 2.
    assert store.max_chain >= 2


def test_timed_get_matches_functional_value():
    config = SystemConfig(
        mechanism=AccessMechanism.ON_DEMAND, backing=BackingStore.DRAM
    )
    system = System(config)
    results = install_memcached(system, SMALL, threads_per_core=2)
    system.run_to_completion(limit_ticks=10**11)
    for (core, slot), values in results.items():
        keys = make_get_keys(SMALL, thread_seed=core * 1000 + slot)
        assert len(values) == len(keys)
        for key, value in zip(keys, values):
            assert value is not None
            # The timed GET returns the first word of each value line.
            for line, word in enumerate(value):
                assert word == value_word(key, line * 8)


def test_all_mechanisms_return_identical_values():
    outcomes = []
    for backing, mechanism in (
        (BackingStore.DRAM, AccessMechanism.ON_DEMAND),
        (BackingStore.DEVICE, AccessMechanism.PREFETCH),
        (BackingStore.DEVICE, AccessMechanism.SOFTWARE_QUEUE),
    ):
        config = SystemConfig(
            mechanism=mechanism, backing=backing, threads_per_core=2
        )
        system = System(config)
        results = install_memcached(system, SMALL, threads_per_core=2)
        system.run_to_completion(limit_ticks=10**11)
        outcomes.append(
            {
                key: tuple(tuple(v) for v in values)
                for key, values in sorted(results.items())
            }
        )
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_store_size_accounts_all_regions():
    size = KvStore.size_bytes(SMALL)
    expected = 64 * 8 + 128 * 64 + 128 * 256
    assert size == expected
