"""Tests for the open-loop load generator (streams and wiring).

Everything in :mod:`repro.workloads.loadgen` must be a pure function
of (seed, index): bit-identical across runs, across chunked
consumption, and across worker counts.  These tests pin that contract
plus the statistical shape of each process.
"""

import itertools
import math

import pytest

from repro.errors import ConfigError
from repro.units import US
from repro.workloads.loadgen import (
    ArrivalKind,
    ArrivalSpec,
    KeySpec,
    OpenLoopSpec,
    UniformStream,
    ZipfianKeys,
    arrival_gaps,
)


def take(iterator, n):
    return list(itertools.islice(iterator, n))


# -- uniform stream ----------------------------------------------------------


def test_uniform_stream_is_pure_function_of_seed_and_index():
    a = UniformStream(7)
    b = UniformStream(7)
    assert [a.next_unit() for _ in range(100)] == [
        b.next_unit() for _ in range(100)
    ]
    # Random access agrees with sequential consumption.
    sequential = UniformStream(7)
    draws = [sequential.next_unit() for _ in range(43)]
    assert UniformStream(7).value_at(42) == draws[42]


def test_uniform_stream_seeds_decorrelate():
    a = [UniformStream(1).value_at(i) for i in range(50)]
    b = [UniformStream(2).value_at(i) for i in range(50)]
    assert a != b


def test_uniform_stream_never_returns_zero():
    stream = UniformStream(3)
    values = [stream.next_unit() for _ in range(10_000)]
    assert all(0 < v <= 1 for v in values)
    # Safe to feed straight into -log(u).
    assert all(math.isfinite(-math.log(v)) for v in values)


# -- arrival processes -------------------------------------------------------


@pytest.mark.parametrize("kind", [ArrivalKind.POISSON, ArrivalKind.MMPP])
def test_arrival_gaps_bit_identical_and_chunk_invariant(kind):
    spec = ArrivalSpec(kind=kind, rate_per_us=0.5)
    full = take(arrival_gaps(spec, seed=11), 200)
    again = take(arrival_gaps(spec, seed=11), 200)
    assert full == again
    # Consuming 50 then 150 yields the identical sequence.
    chunked_iter = arrival_gaps(spec, seed=11)
    chunked = take(chunked_iter, 50) + take(chunked_iter, 150)
    assert chunked == full
    # Different seeds give different streams.
    assert take(arrival_gaps(spec, seed=12), 200) != full


@pytest.mark.parametrize("kind", [ArrivalKind.POISSON, ArrivalKind.MMPP])
def test_arrival_gaps_are_positive_integer_ticks(kind):
    spec = ArrivalSpec(kind=kind, rate_per_us=2.0)
    for gap in take(arrival_gaps(spec, seed=5), 1000):
        assert isinstance(gap, int) and gap >= 1


@pytest.mark.parametrize("kind", [ArrivalKind.POISSON, ArrivalKind.MMPP])
def test_arrival_mean_rate_matches_spec(kind):
    # Long-run mean gap must track US / rate for both processes (the
    # MMPP's modulation shapes variance, not the mean).
    spec = ArrivalSpec(kind=kind, rate_per_us=1.0)
    gaps = take(arrival_gaps(spec, seed=9), 50_000)
    mean = sum(gaps) / len(gaps)
    assert mean == pytest.approx(spec.mean_gap_ticks, rel=0.05)


def test_mmpp_is_burstier_than_poisson():
    rate = 0.5
    poisson = take(
        arrival_gaps(ArrivalSpec(rate_per_us=rate), seed=21), 20_000
    )
    mmpp = take(
        arrival_gaps(
            ArrivalSpec(kind=ArrivalKind.MMPP, rate_per_us=rate), seed=21
        ),
        20_000,
    )

    def cv2(values):  # squared coefficient of variation
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return var / mean**2

    # Poisson gaps have CV^2 ~= 1; the modulated process must exceed it.
    assert cv2(poisson) == pytest.approx(1.0, rel=0.15)
    assert cv2(mmpp) > 1.5 * cv2(poisson)


def test_arrival_spec_validation():
    with pytest.raises(ConfigError):
        ArrivalSpec(rate_per_us=0)
    with pytest.raises(ConfigError):
        ArrivalSpec(kind=ArrivalKind.MMPP, burst_ratio=0.5)
    with pytest.raises(ConfigError):
        ArrivalSpec(kind=ArrivalKind.MMPP, burst_fraction=1.5)
    assert ArrivalSpec(rate_per_us=2.0).mean_gap_ticks == US / 2.0


# -- key popularity ----------------------------------------------------------


def test_zipfian_keys_deterministic_and_in_range():
    spec = KeySpec(items=100, theta=0.9)
    a = ZipfianKeys(spec, seed=4)
    b = ZipfianKeys(spec, seed=4)
    keys = [a.next_key() for _ in range(1000)]
    assert keys == [b.next_key() for _ in range(1000)]
    assert all(0 <= k < 100 for k in keys)


def test_zipfian_skew_concentrates_mass():
    from collections import Counter

    draws = 20_000
    items = 100
    skewed = ZipfianKeys(KeySpec(items=items, theta=0.99), seed=8)
    counts = Counter(skewed.next_key() for _ in range(draws))
    top_share = counts.most_common(1)[0][1] / draws
    # Theta 0.99 puts ~1/zetan ~ 19% of mass on the hottest key.
    assert top_share > 0.10
    # Scrambling: the hottest key is not simply rank 0's identity.
    uniform = ZipfianKeys(KeySpec(items=items, theta=0.0), seed=8)
    flat = Counter(uniform.next_key() for _ in range(draws))
    flat_top = flat.most_common(1)[0][1] / draws
    # Uniform stays close to 1/items = 1%.
    assert flat_top < 0.03
    assert top_share > 5 * flat_top


def test_key_spec_validation():
    with pytest.raises(ConfigError):
        KeySpec(items=0)
    with pytest.raises(ConfigError):
        KeySpec(theta=1.0)
    with pytest.raises(ConfigError):
        KeySpec(theta=-0.1)


def test_open_loop_spec_is_content_addressable():
    from repro.config import stable_digest

    a = OpenLoopSpec(
        arrivals=ArrivalSpec(rate_per_us=0.3), keys=KeySpec(theta=0.5)
    )
    b = OpenLoopSpec(
        arrivals=ArrivalSpec(rate_per_us=0.3), keys=KeySpec(theta=0.5)
    )
    c = OpenLoopSpec(
        arrivals=ArrivalSpec(rate_per_us=0.4), keys=KeySpec(theta=0.5)
    )
    assert stable_digest(a) == stable_digest(b)
    assert stable_digest(a) != stable_digest(c)
