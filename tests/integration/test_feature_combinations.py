"""Integration tests of feature combinations (SMT x mechanisms x
attachments x writes) that no single unit suite exercises together."""

from repro.config import (
    AccessMechanism,
    CpuConfig,
    DeviceAttachment,
    DeviceConfig,
    SystemConfig,
)
from repro.host.system import System
from repro.units import us
from repro.workloads.microbench import MicrobenchSpec, install_microbench


def run_window(config, spec, threads):
    system = System(config)
    install_microbench(system, spec, threads)
    stats = system.run_window(us(20), us(60))
    return system, stats


def test_smt_with_software_queues():
    """Two SMT contexts each run their own SWQ ring and scheduler."""
    config = SystemConfig(
        mechanism=AccessMechanism.SOFTWARE_QUEUE,
        threads_per_core=8,
        cpu=CpuConfig(smt_contexts=2),
        device=DeviceConfig(total_latency_us=1.0),
    )
    system, stats = run_window(config, MicrobenchSpec(work_count=200), 8)
    assert len(system.queue_pairs) == 2
    assert stats.accesses > 100
    # Both contexts' rings saw traffic.
    assert all(qp.descriptors_enqueued > 0 for qp in system.queue_pairs)


def test_smt_with_prefetch_shares_lfbs():
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        threads_per_core=8,
        cpu=CpuConfig(smt_contexts=2),
        device=DeviceConfig(total_latency_us=1.0),
    )
    system, stats = run_window(config, MicrobenchSpec(work_count=200), 8)
    # One physical LFB stack, shared: its peak is the 10-entry cap even
    # though 16 logical threads want slots.
    assert system.cores[0].memsys is system.cores[1].memsys
    assert system.cores[0].memsys.lfb.max_in_flight == 10


def test_membus_with_writes():
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        threads_per_core=6,
        device=DeviceConfig(
            total_latency_us=1.0, attachment=DeviceAttachment.MEMORY_BUS
        ),
    )
    spec = MicrobenchSpec(work_count=200, writes_per_batch=2)
    system, stats = run_window(config, spec, 6)
    assert stats.accesses > 100
    assert system.device.writes_received > 100
    assert system.link.total_wire_bytes() == 0  # nothing touched PCIe


def test_membus_with_smt():
    config = SystemConfig(
        mechanism=AccessMechanism.ON_DEMAND,
        threads_per_core=1,
        cpu=CpuConfig(smt_contexts=2),
        device=DeviceConfig(
            total_latency_us=1.0, attachment=DeviceAttachment.MEMORY_BUS
        ),
    )
    _system, stats = run_window(config, MicrobenchSpec(work_count=200), 1)
    assert stats.accesses > 50


def test_mlp_with_writes_on_swq():
    config = SystemConfig(
        mechanism=AccessMechanism.SOFTWARE_QUEUE,
        threads_per_core=8,
        device=DeviceConfig(total_latency_us=1.0),
    )
    spec = MicrobenchSpec(work_count=200, reads_per_batch=4, writes_per_batch=1)
    system, stats = run_window(config, spec, 8)
    assert stats.accesses > 50
    assert system.device.writes_served > 10


def test_kernel_queue_with_multicore():
    config = SystemConfig(
        mechanism=AccessMechanism.KERNEL_QUEUE,
        cores=2,
        threads_per_core=4,
        device=DeviceConfig(total_latency_us=1.0),
    )
    system, stats = run_window(config, MicrobenchSpec(work_count=200), 4)
    assert stats.accesses > 5  # kernel overheads make it crawl, not die
    assert len(system.queue_pairs) == 2


def test_hw_prefetcher_with_smt():
    from repro.host.driver import PlatformConfig

    config = SystemConfig(
        mechanism=AccessMechanism.ON_DEMAND,
        threads_per_core=1,
        cpu=CpuConfig(smt_contexts=2),
        device=DeviceConfig(total_latency_us=1.0),
    )
    system = System(config, platform=PlatformConfig(hardware_prefetcher=True))
    install_microbench(system, MicrobenchSpec(work_count=200), 1)
    system.run_window(us(20), us(60))
    # One prefetcher per physical memory subsystem, trained by both
    # contexts' streams.
    prefetcher = system.cores[0].memsys.hw_prefetcher
    assert prefetcher is system.cores[1].memsys.hw_prefetcher
    assert prefetcher.observed > 0
