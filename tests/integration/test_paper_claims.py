"""Integration tests asserting the paper's qualitative claims.

Each test runs a reduced version of an evaluation experiment and
checks the *shape* the paper reports -- who wins, where the plateaus
and crossovers sit.  The full-resolution sweeps live in benchmarks/.
"""

import pytest

from repro.config import (
    AccessMechanism,
    CpuConfig,
    DeviceConfig,
    SystemConfig,
    UncoreConfig,
)
from repro.harness.experiment import MeasureWindow, normalized_microbench
from repro.workloads.microbench import MicrobenchSpec

WINDOW = MeasureWindow(warmup_us=20.0, measure_us=60.0)
SPEC = MicrobenchSpec(work_count=200)


def norm(mechanism, threads, latency_us=1.0, cores=1, spec=SPEC, **overrides):
    config = SystemConfig(
        mechanism=mechanism,
        cores=cores,
        threads_per_core=threads,
        device=DeviceConfig(total_latency_us=latency_us),
        **overrides,
    )
    value, result = normalized_microbench(config, spec, WINDOW)
    return value, result


class TestFig2OnDemand:
    def test_on_demand_is_abysmal_at_realistic_work_counts(self):
        value, _ = norm(AccessMechanism.ON_DEMAND, threads=1)
        assert value < 0.2

    def test_large_work_partially_abates_the_loss(self):
        small, _ = norm(
            AccessMechanism.ON_DEMAND, 1, spec=MicrobenchSpec(work_count=100)
        )
        large, _ = norm(
            AccessMechanism.ON_DEMAND, 1, spec=MicrobenchSpec(work_count=5000)
        )
        assert large > 3 * small
        assert large < 0.8  # still well below DRAM


class TestFig3Prefetch:
    def test_performance_scales_with_threads_up_to_the_lfb_limit(self):
        one, _ = norm(AccessMechanism.PREFETCH, 1)
        five, _ = norm(AccessMechanism.PREFETCH, 5)
        ten, _ = norm(AccessMechanism.PREFETCH, 10)
        assert five > 4 * one
        assert ten > 9 * one

    def test_ten_threads_at_1us_reach_dram_parity(self):
        value, _ = norm(AccessMechanism.PREFETCH, 10)
        # "the microsecond-latency device marginally outperforms DRAM"
        assert 0.95 < value < 1.25

    def test_plateau_beyond_ten_threads(self):
        ten, _ = norm(AccessMechanism.PREFETCH, 10)
        sixteen, result = norm(AccessMechanism.PREFETCH, 16)
        assert sixteen == pytest.approx(ten, rel=0.1)
        assert max(result.report["lfb_max_per_core"]) == 10

    def test_longer_latencies_plateau_proportionally_lower(self):
        p1, _ = norm(AccessMechanism.PREFETCH, 16, latency_us=1.0)
        p2, _ = norm(AccessMechanism.PREFETCH, 16, latency_us=2.0)
        p4, _ = norm(AccessMechanism.PREFETCH, 16, latency_us=4.0)
        assert p1 > p2 > p4
        assert p2 == pytest.approx(p1 / 2, rel=0.15)
        assert p4 == pytest.approx(p1 / 4, rel=0.15)


class TestFig5MulticorePrefetch:
    def test_chip_level_queue_caps_aggregate_at_14(self):
        _value, result = norm(AccessMechanism.PREFETCH, 16, cores=8)
        assert result.report["uncore_pcie_max"] == 14

    def test_multicore_exceeds_single_core_cap(self):
        # The chip-level queue (14) exceeds one core's LFBs (10), so
        # multicore aggregates up to 14/10 of the single-core plateau.
        single, _ = norm(AccessMechanism.PREFETCH, 16, latency_us=4.0)
        multi, _ = norm(AccessMechanism.PREFETCH, 16, latency_us=4.0, cores=4)
        assert multi > 1.3 * single
        assert multi == pytest.approx(1.4 * single, rel=0.1)

    def test_more_cores_beyond_the_cap_do_not_help(self):
        four, _ = norm(AccessMechanism.PREFETCH, 16, cores=4)
        eight, _ = norm(AccessMechanism.PREFETCH, 16, cores=8)
        assert eight == pytest.approx(four, rel=0.1)


class TestFig6PrefetchMlp:
    def test_mlp_tops_out_at_proportionally_fewer_threads(self):
        # "the 2-read system tops out at 5 threads, the 4-read at 3".
        def curve(reads, threads):
            value, _ = norm(
                AccessMechanism.PREFETCH,
                threads,
                spec=MicrobenchSpec(work_count=200, reads_per_batch=reads),
            )
            return value

        two_at_5 = curve(2, 5)
        two_at_10 = curve(2, 10)
        assert two_at_10 == pytest.approx(two_at_5, rel=0.12)

        four_at_3 = curve(4, 3)
        four_at_8 = curve(4, 8)
        assert four_at_8 == pytest.approx(four_at_3, rel=0.15)

    def test_mlp_peaks_are_lower_relative_to_matched_baseline(self):
        one, _ = norm(AccessMechanism.PREFETCH, 16)
        four, _ = norm(
            AccessMechanism.PREFETCH,
            16,
            spec=MicrobenchSpec(work_count=200, reads_per_batch=4),
        )
        assert four < 0.5 * one


class TestFig7SwqVsPrefetch:
    def test_swq_keeps_gaining_past_the_lfb_limit_at_4us(self):
        ten, _ = norm(AccessMechanism.SOFTWARE_QUEUE, 10, latency_us=4.0)
        twenty_four, _ = norm(AccessMechanism.SOFTWARE_QUEUE, 24, latency_us=4.0)
        assert twenty_four > 1.8 * ten

    def test_swq_peak_is_about_half_the_baseline(self):
        peak = max(
            norm(AccessMechanism.SOFTWARE_QUEUE, threads)[0]
            for threads in (16, 24, 32)
        )
        assert 0.4 < peak < 0.6

    def test_prefetch_beats_swq_at_1us(self):
        prefetch, _ = norm(AccessMechanism.PREFETCH, 10)
        swq_peak = max(
            norm(AccessMechanism.SOFTWARE_QUEUE, threads)[0]
            for threads in (16, 32)
        )
        assert prefetch > 1.5 * swq_peak

    def test_swq_overtakes_prefetch_at_4us_with_many_threads(self):
        prefetch, _ = norm(AccessMechanism.PREFETCH, 32, latency_us=4.0)
        swq, _ = norm(AccessMechanism.SOFTWARE_QUEUE, 32, latency_us=4.0)
        assert swq > prefetch


class TestFig8MulticoreSwq:
    def test_swq_scales_linearly_to_four_cores(self):
        one, _ = norm(AccessMechanism.SOFTWARE_QUEUE, 24)
        four, _ = norm(AccessMechanism.SOFTWARE_QUEUE, 24, cores=4)
        assert four == pytest.approx(4 * one, rel=0.15)

    def test_eight_cores_hit_the_pcie_request_rate_wall(self):
        four, _ = norm(AccessMechanism.SOFTWARE_QUEUE, 24, cores=4)
        eight, result = norm(AccessMechanism.SOFTWARE_QUEUE, 24, cores=8)
        assert eight < 1.8 * four  # sublinear
        # The wall is wire bytes: upstream utilization is high.
        up = result.report["pcie_up_wire_bytes"]
        assert up / (60e-6) > 0.7 * 4e9  # >70% of the 4 GB/s direction


class TestFig9SwqMlp:
    def test_mlp_lowers_swq_peaks(self):
        def peak(reads):
            return max(
                norm(
                    AccessMechanism.SOFTWARE_QUEUE,
                    threads,
                    spec=MicrobenchSpec(work_count=200, reads_per_batch=reads),
                )[0]
                for threads in (16, 32)
            )

        one, two, four = peak(1), peak(2), peak(4)
        # Paper: ~50%, ~45%, ~35%.
        assert one > two > four
        assert four > 0.2


class TestImplications:
    def test_bigger_lfbs_restore_dram_parity_even_at_4us(self):
        """Section V-B: '20 x expected-device-latency-in-microseconds'."""
        stock, _ = norm(AccessMechanism.PREFETCH, 16, latency_us=4.0)
        sized, _ = norm(
            AccessMechanism.PREFETCH,
            88,
            latency_us=4.0,
            cpu=CpuConfig(lfb_entries=80),
            uncore=UncoreConfig(pcie_queue_entries=320),
        )
        assert stock < 0.35
        assert sized > 0.95

    def test_bigger_chip_queue_restores_multicore_scaling(self):
        stock, _ = norm(AccessMechanism.PREFETCH, 16, cores=4)
        sized, _ = norm(
            AccessMechanism.PREFETCH,
            16,
            cores=4,
            cpu=CpuConfig(lfb_entries=20),
            uncore=UncoreConfig(pcie_queue_entries=80),
        )
        assert sized > 2.5 * stock

    def test_kernel_queues_are_dominated(self):
        kernel, _ = norm(AccessMechanism.KERNEL_QUEUE, 16)
        swq, _ = norm(AccessMechanism.SOFTWARE_QUEUE, 16)
        assert kernel < 0.3 * swq
