"""Golden-series guard for the kernel fast path.

``tests/golden/fig3_quick_prepr2.json`` holds the fig3("quick") series
produced by the kernel *before* the same-tick run queue / lean events
rework.  The rework's contract is bit-for-bit determinism, so the
comparison is exact equality of the serialized figure -- no tolerances.
JSON round-trips floats through repr, which is lossless, so equality of
the parsed structures is equality of the series.
"""

import json
import pathlib

from repro.harness.figures import fig3
from repro.harness.regression import figure_to_dict
from repro.harness.sweep import SweepEngine

GOLDEN = pathlib.Path(__file__).parent.parent / "golden" / "fig3_quick_prepr2.json"


def test_fig3_quick_is_bit_for_bit_identical_to_pre_rework_kernel():
    figure = fig3("quick", engine=SweepEngine(jobs=1, use_cache=False))
    assert figure_to_dict(figure) == json.loads(GOLDEN.read_text())
