"""Determinism: identical configurations produce identical histories.

The replay methodology (record one run, replay it in another) only
works because the simulator is bit-for-bit deterministic; these tests
pin that property for every mechanism and workload family.
"""

from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.host.system import System
from repro.units import us
from repro.workloads.bloom import BloomParams, install_bloom
from repro.workloads.microbench import MicrobenchSpec, install_microbench


def run_fingerprint(mechanism, threads=6):
    config = SystemConfig(
        mechanism=mechanism,
        threads_per_core=threads,
        device=DeviceConfig(total_latency_us=1.0),
    )
    system = System(config)
    install_microbench(system, MicrobenchSpec(work_count=150), threads)
    stats = system.run_window(us(15), us(40))
    report = system.report()
    return (
        stats.work_instructions,
        stats.accesses,
        system.sim.now,
        report["pcie_up_wire_bytes"],
        report["context_switches"],
    )


def test_microbench_runs_are_bit_identical():
    for mechanism in AccessMechanism:
        assert run_fingerprint(mechanism) == run_fingerprint(mechanism), mechanism


def test_application_runs_are_bit_identical():
    def run():
        config = SystemConfig(
            mechanism=AccessMechanism.SOFTWARE_QUEUE, threads_per_core=4
        )
        system = System(config)
        install_bloom(system, BloomParams(queries_per_thread=12), 4)
        ticks = system.run_to_completion(limit_ticks=10**12)
        return ticks, system.device.requests_served

    assert run() == run()


def test_recorded_traces_are_identical_across_runs():
    def record():
        config = SystemConfig(
            mechanism=AccessMechanism.PREFETCH, threads_per_core=3
        )
        system = System(config)
        install_microbench(
            system, MicrobenchSpec(work_count=120, iterations=20), 3
        )
        system.device.start_recording()
        system.run_to_completion(limit_ticks=10**11)
        return system.device.stop_recording()

    first, second = record(), record()
    assert {core: list(trace) for core, trace in first.items()} == {
        core: list(trace) for core, trace in second.items()
    }
