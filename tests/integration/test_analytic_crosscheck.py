"""Cross-validation: the DES against the closed-form envelope model.

Two independent derivations of the same numbers; agreement within
tolerance means neither hides a unit error.
"""

import pytest

from repro.config import AccessMechanism, CpuConfig, DeviceConfig, SystemConfig
from repro.harness.analytic import (
    predict_on_demand_ipc,
    predict_prefetch_bounds,
    predict_prefetch_ipc,
    predict_swq_peak_ipc,
)
from repro.harness.experiment import MeasureWindow, run_microbench
from repro.workloads.microbench import MicrobenchSpec

WINDOW = MeasureWindow(warmup_us=25.0, measure_us=80.0)


def measure(mechanism, threads, spec, **overrides):
    config = SystemConfig(
        mechanism=mechanism,
        threads_per_core=threads,
        device=DeviceConfig(total_latency_us=overrides.pop("latency_us", 1.0)),
        **overrides,
    )
    return config, run_microbench(config, spec, WINDOW).work_ipc


@pytest.mark.parametrize("work", [100, 500, 2000])
@pytest.mark.parametrize("latency_us", [1.0, 4.0])
def test_on_demand_matches_envelope(work, latency_us):
    spec = MicrobenchSpec(work_count=work)
    config, measured = measure(
        AccessMechanism.ON_DEMAND, 1, spec, latency_us=latency_us
    )
    predicted = predict_on_demand_ipc(config, spec)
    # The simulator may exceed the envelope slightly (ROB run-ahead).
    assert measured == pytest.approx(predicted, rel=0.12)


@pytest.mark.parametrize("threads", [1, 4, 10, 16])
@pytest.mark.parametrize("latency_us", [1.0, 2.0])
def test_prefetch_matches_envelope(threads, latency_us):
    spec = MicrobenchSpec(work_count=200)
    config, measured = measure(
        AccessMechanism.PREFETCH, threads, spec, latency_us=latency_us
    )
    predicted = predict_prefetch_ipc(config, spec, threads)
    assert measured == pytest.approx(predicted, rel=0.12)


@pytest.mark.parametrize("reads", [1, 2, 4])
def test_prefetch_mlp_cap_matches_envelope(reads):
    spec = MicrobenchSpec(work_count=200, reads_per_batch=reads)
    config, measured = measure(AccessMechanism.PREFETCH, 16, spec)
    predicted = predict_prefetch_ipc(config, spec, 16)
    assert measured == pytest.approx(predicted, rel=0.12)


def test_prefetch_bigger_lfbs_within_compute_envelope():
    spec = MicrobenchSpec(work_count=200)
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        threads_per_core=24,
        cpu=CpuConfig(lfb_entries=20),
        device=DeviceConfig(total_latency_us=1.0),
    )
    measured = run_microbench(config, spec, WINDOW).work_ipc
    # 20 in flight at 1 us -> the compute regime binds before the
    # queue; the measurement must land inside the serial/overlapped
    # envelope.
    lower, upper = predict_prefetch_bounds(config, spec, 24)
    assert 0.95 * lower <= measured <= 1.05 * upper


@pytest.mark.parametrize("reads", [1, 4])
def test_swq_peak_matches_envelope(reads):
    spec = MicrobenchSpec(work_count=200, reads_per_batch=reads)
    config, measured = measure(AccessMechanism.SOFTWARE_QUEUE, 32, spec)
    predicted = predict_swq_peak_ipc(config, spec)
    assert measured == pytest.approx(predicted, rel=0.18)


def test_forced_dense_scheduler_preserves_envelope():
    """The calendar wheel's fast-forward of quiescent spans (a 4 us
    device round trip with one thread leaves the timed tier idle
    between misses) must not perturb the physics: forcing the wheel on
    for a real platform workload reproduces the default-mode IPC
    bit-for-bit and stays inside the closed-form envelope."""
    from repro.sim import kernel as fast_kernel

    spec = MicrobenchSpec(work_count=500)
    config, default_ipc = measure(
        AccessMechanism.ON_DEMAND, 1, spec, latency_us=4.0
    )
    saved = fast_kernel._DENSE_AT, fast_kernel._SPARSE_AT
    fast_kernel._DENSE_AT, fast_kernel._SPARSE_AT = 4, 2
    try:
        _, dense_ipc = measure(
            AccessMechanism.ON_DEMAND, 1, spec, latency_us=4.0
        )
    finally:
        fast_kernel._DENSE_AT, fast_kernel._SPARSE_AT = saved
    assert dense_ipc == default_ipc
    assert dense_ipc == pytest.approx(predict_on_demand_ipc(config, spec), rel=0.12)
