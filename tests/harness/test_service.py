"""Tests for the open-loop service driver and its sweep integration."""

import pytest

from repro.config import (
    AccessMechanism,
    DeviceConfig,
    SwqConfig,
    SystemConfig,
)
from repro.errors import ConfigError
from repro.harness.experiment import MeasureWindow
from repro.harness.service import ServiceParams, run_service
from repro.harness.sweep import SweepEngine, SweepJob, baseline_job
from repro.workloads.loadgen import ArrivalKind, ArrivalSpec, KeySpec, OpenLoopSpec

WINDOW = MeasureWindow(warmup_us=10.0, measure_us=60.0)


def swq_config(cores=1, workers=8, ring=None):
    swq = SwqConfig() if ring is None else SwqConfig(ring_entries=ring)
    return SystemConfig(
        mechanism=AccessMechanism.SOFTWARE_QUEUE,
        cores=cores,
        threads_per_core=workers,
        device=DeviceConfig(total_latency_us=1.0),
        swq=swq,
    )


def service_params(rate=0.2, **kwargs):
    return ServiceParams(
        open_loop=OpenLoopSpec(arrivals=ArrivalSpec(rate_per_us=rate)),
        **kwargs,
    )


def test_run_service_reports_slo_quantities():
    result = run_service(swq_config(), service_params(), WINDOW)
    assert result.arrivals > 0
    assert result.completions > 0
    # Quantiles are ordered and in a sane band: at least the device
    # round-trip (~1 us), far below the measurement window.
    assert 500 < result.p50_ns <= result.p99_ns <= result.p999_ns
    assert result.p999_ns <= result.max_ns < 60_000.0
    assert result.jitter_ns >= 0
    assert result.achieved_per_us > 0
    payload = result.payload()
    assert payload["p99_ns"] == result.p99_ns
    assert payload["completions"] == result.completions


def test_run_service_is_deterministic():
    a = run_service(swq_config(), service_params(), WINDOW)
    b = run_service(swq_config(), service_params(), WINDOW)
    assert a.payload() == b.payload()


def test_run_service_seed_changes_results():
    params = service_params()
    reseeded = ServiceParams(
        open_loop=OpenLoopSpec(
            arrivals=params.open_loop.arrivals, seed=99
        ),
    )
    a = run_service(swq_config(), params, WINDOW)
    b = run_service(swq_config(), reseeded, WINDOW)
    assert a.payload() != b.payload()


def test_service_percentiles_exclude_warmup():
    # Drive the service directly so we can see both views of the
    # sojourn probe: the lifetime reservoir (includes warmup) and the
    # windowed reservoir the harness reports from.
    from repro.host.system import System
    from repro.workloads.loadgen import install_service

    params = service_params(rate=0.3)
    system = System(swq_config())
    state = install_service(
        system, params.store_params(), params.open_loop,
        params.workers_per_core,
    )
    # A GET takes ~9 us end to end at 1 us device latency, so the
    # warmup must be long enough for warmup-era completions to exist.
    window = MeasureWindow(warmup_us=40.0, measure_us=60.0)
    system.run_window(window.warmup_ticks, window.measure_ticks)
    sojourn = state.sojourn
    # Warmup completed requests too, so the lifetime population is
    # strictly larger than the windowed one ...
    assert sojourn.count > sojourn.windowed_count > 0
    # ... and the default percentile() reports the windowed view.
    assert sojourn.percentile(99) == sojourn.windowed_percentile(99)
    # Offered load arrived open-loop at ~0.3/us over the 60 us window.
    assert state.arrivals.windowed == pytest.approx(
        0.3 * 60.0, rel=0.35
    )


def test_open_loop_reveals_saturation():
    # Closed-loop threads throttle themselves; the open loop must not.
    # Past saturation, arrivals keep landing and the queue grows.
    light = run_service(swq_config(), service_params(rate=0.1), WINDOW)
    overload = run_service(swq_config(), service_params(rate=2.0), WINDOW)
    assert overload.arrivals > 4 * light.arrivals
    assert overload.queue_depth_max > light.queue_depth_max
    assert overload.p99_ns > light.p99_ns


def test_small_ring_survives_many_workers():
    # Regression: with 16 workers per core and an 8-entry ring the
    # completion ring overflowed (ProtocolError) because the host kept
    # more reads outstanding than the CQ could hold.  The SQ/CQ credit
    # discipline in the runtime must bound submissions instead.
    config = swq_config(workers=16, ring=8)
    result = run_service(
        config,
        service_params(rate=0.3, workers_per_core=16),
        WINDOW,
    )
    assert result.completions > 0


def test_rule_sized_ring_beats_under_rule_tail():
    # Paper section V-B: ~20 x latency_us entries per core.  At 1 us
    # device latency the rule-sized (32) ring must not lose to the
    # under-provisioned (8) ring on p99 sojourn.
    under = run_service(
        swq_config(workers=16, ring=8),
        service_params(rate=0.3, workers_per_core=16),
        WINDOW,
    )
    rule = run_service(
        swq_config(workers=16, ring=32),
        service_params(rate=0.3, workers_per_core=16),
        WINDOW,
    )
    assert rule.p99_ns < under.p99_ns


def test_service_key_space_must_fit_store():
    params = ServiceParams(
        open_loop=OpenLoopSpec(keys=KeySpec(items=4096)), items=512
    )
    with pytest.raises(ConfigError, match="exceeds the populated store"):
        run_service(swq_config(), params, WINDOW)


def test_mmpp_arrivals_run_end_to_end():
    params = ServiceParams(
        open_loop=OpenLoopSpec(
            arrivals=ArrivalSpec(
                kind=ArrivalKind.MMPP, rate_per_us=0.2, mean_dwell_us=5.0
            )
        )
    )
    result = run_service(swq_config(), params, WINDOW)
    assert result.completions > 0


# -- sweep integration -------------------------------------------------------


def service_job(rate=0.2, label=None):
    return SweepJob(
        config=swq_config(),
        service=service_params(rate=rate),
        window=WINDOW,
        label=label,
    )


def test_sweep_job_kind_and_validation():
    job = service_job()
    assert job.kind == "service"
    assert "service poisson" in job.describe()
    with pytest.raises(ConfigError, match="no spec/app"):
        SweepJob(
            config=swq_config(),
            service=service_params(),
            app="memcached",
        )
    with pytest.raises(ConfigError, match="no normalizing baseline"):
        baseline_job(job)


def test_service_jobs_identical_serial_and_parallel(tmp_path):
    jobs = [service_job(rate=r, label=r) for r in (0.1, 0.2)]
    serial = SweepEngine(jobs=1, cache_dir=tmp_path / "serial").run(jobs)
    parallel = SweepEngine(jobs=2, cache_dir=tmp_path / "parallel").run(jobs)
    assert [o.payload for o in serial] == [o.payload for o in parallel]
    assert serial[0].payload["kind"] == "service"
    assert serial[0].payload["p99_ns"] > 0


def test_service_jobs_cache_warm(tmp_path):
    jobs = [service_job(rate=0.2)]
    cache_dir = tmp_path / "cache"
    cold_engine = SweepEngine(jobs=1, cache_dir=cache_dir)
    cold = cold_engine.run(jobs)
    warm_engine = SweepEngine(jobs=1, cache_dir=cache_dir)
    warm = warm_engine.run(jobs)
    assert warm_engine.last_stats["simulated"] == 0
    assert warm_engine.last_stats["cache_hits"] == 1
    assert [o.payload for o in warm] == [o.payload for o in cold]
    assert all(o.cached for o in warm)


# -- request-scoped span attribution (repro.obs.spans) ---------------------


def _attributed(config=None, **param_kwargs):
    config = config or swq_config()
    params = service_params(spans=True, **param_kwargs)
    return run_service(config, params, WINDOW)


def test_run_service_with_spans_attributes_latency():
    result = _attributed()
    attribution = result.attribution
    assert attribution is not None and result.exemplars is not None
    conservation = attribution["conservation"]
    assert conservation["sojourn_ticks"] == conservation["segments_ticks"]
    assert conservation["checked"] == conservation["closed"]
    assert attribution["requests"] == result.completions
    assert sum(
        row["share"] for row in attribution["segments"].values()
    ) == pytest.approx(1.0)
    # An SWQ run exercises the full taxonomy: every segment sees time.
    for name in ("queue", "sq", "device", "cq", "work"):
        assert attribution["segments"][name]["total_ns"] > 0, name


def test_span_exemplar_trees_tile_their_sojourns():
    result = _attributed(span_exemplars=4)
    slowest = result.exemplars["slowest"]
    assert 1 <= len(slowest) <= 4
    sojourns = [tree["sojourn_ticks"] for tree in slowest]
    assert sojourns == sorted(sojourns, reverse=True)
    for tree in slowest:
        cursor = tree["arrived_at"]
        for _name, begin, end in tree["segments"]:
            assert begin == cursor and end >= begin
            cursor = end
        assert cursor == tree["finished_at"]
    assert set(result.exemplars["stratified"]) == {"p50", "p90", "p99"}


def test_spans_are_model_passive():
    base = run_service(swq_config(), service_params(), WINDOW)
    attributed = _attributed()
    payload = attributed.payload()
    payload.pop("attribution")
    payload.pop("exemplars")
    assert payload == base.payload()


@pytest.mark.parametrize(
    "mechanism",
    [AccessMechanism.ON_DEMAND, AccessMechanism.PREFETCH],
)
def test_span_conservation_holds_without_completion_ring(mechanism):
    # Memory-mapped mechanisms have no sq/cq hops: submission is a
    # load/prefetch, so their time lands in device/work -- but the
    # conservation law is mechanism-independent.
    config = SystemConfig(
        mechanism=mechanism,
        cores=1,
        threads_per_core=8,
        device=DeviceConfig(total_latency_us=1.0),
    )
    result = _attributed(config=config)
    conservation = result.attribution["conservation"]
    assert conservation["sojourn_ticks"] == conservation["segments_ticks"]
    assert result.attribution["requests"] == result.completions > 0


def test_spans_clean_under_invariant_monitor():
    result = run_service(
        swq_config(), service_params(spans=True), WINDOW,
        check_invariants=True,
    )
    # A violation raises out of run_service; reaching here means the
    # monitor's periodic sweeps (span bookkeeping included) all passed.
    assert result.report["invariants"]["checks_run"] > 0
    assert result.attribution["requests"] == result.completions


def test_spans_deterministic_across_runs():
    a = _attributed()
    b = _attributed()
    assert a.payload() == b.payload()
    assert a.exemplars == b.exemplars


def test_service_rejects_bad_span_exemplars():
    with pytest.raises(ConfigError, match="exemplar"):
        service_params(spans=True, span_exemplars=0)
