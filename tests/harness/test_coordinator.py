"""Unit tests for the durable work-queue sweep coordinator."""

import json
import multiprocessing
import os

import pytest

from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.errors import ConfigError
from repro.harness import coordinator
from repro.harness.coordinator import (
    DONE,
    FAILED,
    LEASED,
    MANIFEST_FORMAT,
    PENDING,
    WorkQueue,
    find_queues,
    job_from_jsonable,
    job_to_jsonable,
    worker_loop,
)
from repro.harness.experiment import MeasureWindow
from repro.harness.service import ServiceParams
from repro.harness.sweep import (
    MODEL_VERSION,
    ResultCache,
    SweepJob,
    job_digest,
)
from repro.workloads.bloom import BloomParams
from repro.workloads.microbench import MicrobenchSpec

TINY = MeasureWindow(warmup_us=2.0, measure_us=8.0)


def _job(threads=2, work=50, latency_us=1.0) -> SweepJob:
    return SweepJob(
        config=SystemConfig(
            mechanism=AccessMechanism.PREFETCH,
            threads_per_core=threads,
            device=DeviceConfig(total_latency_us=latency_us),
        ),
        spec=MicrobenchSpec(work_count=work),
        window=TINY,
    )


def _queue(tmp_path, jobs, name="unit", salt="s") -> WorkQueue:
    keys = [job_digest(job, salt) for job in jobs]
    queue = WorkQueue.ensure(
        tmp_path / "q", name=name, salt=salt,
        model_version=MODEL_VERSION, keys=keys,
    )
    for key, job in zip(keys, jobs):
        queue.enqueue(key, job)
    return queue


# ---------------------------------------------------------------------------
# Job (de)serialization
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("job", [
    _job(),
    SweepJob(config=SystemConfig(), app="bloom",
             params=BloomParams(items=1 << 10, queries_per_thread=8)),
    SweepJob(config=SystemConfig(), service=ServiceParams(items=64,
                                                          buckets=64)),
], ids=["microbench", "application", "service"])
def test_job_survives_json_round_trip(job):
    data = json.loads(json.dumps(job_to_jsonable(job)))
    rebuilt = job_from_jsonable(data)
    assert rebuilt.kind == job.kind
    assert job_digest(rebuilt, "s") == job_digest(job, "s")


def test_round_trip_drops_label_like_the_digest_does():
    labelled = SweepJob(
        config=SystemConfig(), spec=MicrobenchSpec(work_count=10),
        window=TINY, label=("series", 3),
    )
    rebuilt = job_from_jsonable(job_to_jsonable(labelled))
    assert rebuilt.label is None
    assert job_digest(rebuilt, "x") == job_digest(labelled, "x")


def test_unknown_params_type_is_config_error():
    data = job_to_jsonable(
        SweepJob(config=SystemConfig(), app="bloom", params=BloomParams())
    )
    data["params_type"] = "NoSuchParams"
    with pytest.raises(ConfigError):
        job_from_jsonable(data)


# ---------------------------------------------------------------------------
# Queue state machine
# ---------------------------------------------------------------------------

def test_job_walks_the_state_machine(tmp_path):
    job = _job()
    queue = _queue(tmp_path, [job])
    [key] = queue.order
    assert queue.state(key) == PENDING

    assert queue.try_claim(key, "w1", lease_s=60.0)
    assert queue.state(key) == LEASED
    assert not queue.try_claim(key, "w2", lease_s=60.0)

    queue.release(key)
    assert queue.state(key) == PENDING

    queue.fail(key, {"error": "ValueError: boom", "error_type": "ValueError",
                     "worker": "w1"})
    assert queue.state(key) == FAILED
    assert queue.failure(key)["error_type"] == "ValueError"
    queue.clear_failure(key)
    assert queue.state(key) == PENDING

    queue.complete(key, {"payload": {"x": 1}, "cached": False,
                         "worker": "w1", "wall_s": 0.1})
    assert queue.state(key) == DONE
    assert queue.done_record(key)["payload"] == {"x": 1}
    assert queue.counts() == {PENDING: 0, LEASED: 0, DONE: 1, FAILED: 0}
    assert queue.unresolved() == 0


def test_done_wins_over_stale_failure_marker(tmp_path):
    queue = _queue(tmp_path, [_job()])
    [key] = queue.order
    queue.fail(key, {"error": "x", "error_type": "X", "worker": "w"})
    queue.complete(key, {"payload": {}, "cached": False,
                         "worker": "w", "wall_s": 0.0})
    # complete() clears the failure marker: a resolved job is done.
    assert queue.state(key) == DONE
    assert queue.failure(key) is None


def test_expired_lease_is_stolen(tmp_path):
    queue = _queue(tmp_path, [_job()])
    [key] = queue.order
    assert queue.try_claim(key, "w1", lease_s=0.0)
    # Zero-duration lease: already expired, so a second worker wins.
    assert queue.state(key) == PENDING
    assert queue.try_claim(key, "w2", lease_s=60.0)
    assert queue.lease(key)["worker"] == "w2"


def test_dead_local_workers_lease_is_stolen(tmp_path):
    queue = _queue(tmp_path, [_job()])
    [key] = queue.order
    # A worker id naming a dead pid on *this* host: provably stale.
    child = multiprocessing.get_context("fork").Process(target=lambda: None)
    child.start()
    dead_pid = child.pid
    child.join()
    import socket

    assert queue.try_claim(key, f"{socket.gethostname()}-{dead_pid}-w0",
                           lease_s=3600.0)
    assert queue.state(key) == PENDING
    assert queue.try_claim(key, "w2", lease_s=60.0)


def test_remote_workers_lease_is_respected(tmp_path):
    queue = _queue(tmp_path, [_job()])
    [key] = queue.order
    # No pid is decodable for a foreign host, so the lease holds until
    # it expires.
    assert queue.try_claim(key, "otherhost.example-99999", lease_s=3600.0)
    assert queue.state(key) == LEASED
    assert not queue.try_claim(key, "w2", lease_s=60.0)


def test_claim_follows_submission_order(tmp_path):
    jobs = [_job(work=work) for work in (10, 20, 30)]
    queue = _queue(tmp_path, jobs)
    claimed = [queue.claim("w", 60.0)[0] for _ in range(3)]
    assert claimed == queue.order
    assert queue.claim("w", 60.0) is None  # everything leased


# ---------------------------------------------------------------------------
# Manifest: creation, resume, provenance
# ---------------------------------------------------------------------------

def test_ensure_attaches_to_matching_queue(tmp_path):
    job = _job()
    first = _queue(tmp_path, [job])
    again = WorkQueue.ensure(
        tmp_path / "q", name="unit", salt="s",
        model_version=MODEL_VERSION, keys=[job_digest(job, "s")],
    )
    assert again.order == first.order
    assert again.manifest()["spec_digest"] == first.manifest()["spec_digest"]


def test_ensure_refuses_foreign_queue(tmp_path):
    _queue(tmp_path, [_job()])
    with pytest.raises(ConfigError, match="refusing to mix"):
        WorkQueue.ensure(
            tmp_path / "q", name="other", salt="s",
            model_version=MODEL_VERSION,
            keys=[job_digest(_job(work=999), "s")],
        )


def test_attach_requires_a_manifest(tmp_path):
    with pytest.raises(ConfigError):
        WorkQueue.attach(tmp_path / "nothing")


def test_finalize_manifest_folds_states_and_counts(tmp_path):
    jobs = [_job(work=work) for work in (10, 20)]
    queue = _queue(tmp_path, jobs)
    done, pending = queue.order
    queue.complete(done, {"payload": {}, "cached": False,
                          "worker": "w", "wall_s": 0.0})
    manifest = queue.finalize_manifest()
    assert manifest["jobs"][done] == DONE
    assert manifest["jobs"][pending] == PENDING
    assert manifest["counts"][DONE] == 1
    assert manifest["format"] == MANIFEST_FORMAT


def test_note_run_links_ledger_ids_once(tmp_path):
    queue = _queue(tmp_path, [_job()])
    queue.note_run("abc123")
    queue.note_run("abc123")
    queue.note_run("def456")
    assert queue.manifest()["runs"] == ["abc123", "def456"]


# ---------------------------------------------------------------------------
# The worker loop
# ---------------------------------------------------------------------------

def test_worker_loop_drains_queue(tmp_path):
    jobs = [_job(work=work) for work in (10, 20)]
    queue = _queue(tmp_path, jobs)
    stats = worker_loop(queue, "w1")
    assert stats == {"claims": 2, "done": 2, "failed": 0, "cache_hits": 0}
    assert queue.unresolved() == 0
    for key in queue.order:
        record = queue.done_record(key)
        assert record["worker"] == "w1"
        assert record["cached"] is False
        assert record["payload"]["kind"] == "microbench"


def test_worker_loop_serves_and_fills_the_cache(tmp_path):
    job = _job()
    cache = ResultCache(tmp_path / "cache")
    queue = _queue(tmp_path, [job], salt="s")
    first = worker_loop(queue, "w1", cache=cache)
    assert first == {"claims": 1, "done": 1, "failed": 0, "cache_hits": 0}

    # Same job in a second queue: served from the shared cache.
    [key] = queue.order
    other = WorkQueue.ensure(
        tmp_path / "q2", name="unit", salt="s",
        model_version=MODEL_VERSION, keys=[key],
    )
    other.enqueue(key, job)
    second = worker_loop(other, "w2", cache=cache)
    assert second == {"claims": 1, "done": 0, "failed": 0, "cache_hits": 1}
    assert other.done_record(key)["cached"] is True
    assert (other.done_record(key)["payload"]
            == queue.done_record(key)["payload"])


def test_worker_loop_records_structured_failures(tmp_path, monkeypatch):
    queue = _queue(tmp_path, [_job()])

    def _boom(job, collect_metrics, check_invariants):
        raise ValueError("injected fault")

    from repro.harness import sweep as sweep_mod

    monkeypatch.setattr(sweep_mod, "_execute_job", _boom)
    stats = worker_loop(queue, "w1")
    assert stats["failed"] == 1
    [key] = queue.order
    assert queue.state(key) == FAILED
    record = queue.failure(key)
    assert record["error"] == "ValueError: injected fault"
    assert record["error_type"] == "ValueError"
    assert record["worker"] == "w1"


def test_worker_loop_max_jobs_makes_a_partial_drain(tmp_path):
    jobs = [_job(work=work) for work in (10, 20, 30)]
    queue = _queue(tmp_path, jobs)
    partial = worker_loop(queue, "w1", max_jobs=2)
    assert partial["claims"] == 2
    assert queue.unresolved() == 1
    rest = worker_loop(queue, "w2")
    assert rest["done"] == 1
    assert queue.unresolved() == 0


# ---------------------------------------------------------------------------
# Standalone workers over a queue tree
# ---------------------------------------------------------------------------

def test_find_queues_discovers_root_and_children(tmp_path):
    job = _job()
    key = job_digest(job, "s")
    for name in ("a", "b"):
        child = WorkQueue.ensure(
            tmp_path / name, name=name, salt="s",
            model_version=MODEL_VERSION, keys=[key],
        )
        child.enqueue(key, job)
    (tmp_path / "noise").mkdir()
    roots = [queue.root for queue in find_queues(tmp_path)]
    assert roots == [tmp_path / "a", tmp_path / "b"]


def test_drain_queue_tree_resolves_every_queue(tmp_path):
    job_a, job_b = _job(work=10), _job(work=20)
    for name, job in (("a", job_a), ("b", job_b)):
        key = job_digest(job, "s")
        child = WorkQueue.ensure(
            tmp_path / name, name=name, salt="s",
            model_version=MODEL_VERSION, keys=[key],
        )
        child.enqueue(key, job)
    seen = []
    totals = coordinator.drain_queue_tree(
        tmp_path, "w1", cache=None, on_queue=lambda q: seen.append(q.root),
    )
    assert totals["queues"] == 2
    assert totals["done"] == 2
    assert totals["failed"] == 0
    assert seen == [tmp_path / "a", tmp_path / "b"]
    for queue in find_queues(tmp_path):
        assert queue.unresolved() == 0
