"""Tests for figure baselines and comparison."""

import pytest

from repro.errors import ConfigError
from repro.harness.figures import FigureResult
from repro.harness.regression import (
    compare_to_baseline,
    figure_from_dict,
    figure_to_dict,
    load_baseline,
    save_baseline,
)


def make_figure(values=(0.1, 0.5, 1.0)):
    figure = FigureResult("figZ", "Test", xlabel="threads", ylabel="norm")
    series = figure.new_series("1us")
    for x, y in zip((1, 4, 10), values):
        series.add(x, y)
    other = figure.new_series("4us")
    other.add(1, 0.05)
    return figure


def test_roundtrip_through_dict():
    figure = make_figure()
    clone = figure_from_dict(figure_to_dict(figure))
    assert clone.figure_id == figure.figure_id
    assert clone.get("1us").points == figure.get("1us").points
    assert clone.get("4us").points == figure.get("4us").points


def test_save_and_load_file(tmp_path):
    path = tmp_path / "base.json"
    save_baseline(make_figure(), path)
    loaded = load_baseline(path)
    assert loaded.get("1us").y_at(10) == 1.0


def test_bad_format_rejected():
    with pytest.raises(ConfigError):
        figure_from_dict({"format": "something-else"})


def test_identical_runs_have_no_deviations():
    assert compare_to_baseline(make_figure(), make_figure()) == []


def test_small_drift_within_tolerance():
    baseline = make_figure((0.1, 0.5, 1.0))
    current = make_figure((0.102, 0.51, 1.02))
    assert compare_to_baseline(current, baseline, rtol=0.05) == []


def test_large_drift_reported():
    baseline = make_figure((0.1, 0.5, 1.0))
    current = make_figure((0.1, 0.8, 1.0))
    deviations = compare_to_baseline(current, baseline)
    assert len(deviations) == 1
    assert deviations[0].kind == "value"
    assert deviations[0].x == 4
    assert "0.5000 -> 0.8000" in deviations[0].describe()


def test_structural_changes_reported():
    baseline = make_figure()
    current = make_figure()
    current.series.pop()  # drop "4us"
    extra = current.new_series("8us")
    extra.add(1, 0.01)
    current.get("1us").points.pop()  # drop x=10
    deviations = compare_to_baseline(current, baseline)
    kinds = {d.kind for d in deviations}
    assert kinds == {"missing-series", "new-series", "missing-point"}


def test_mismatched_figures_rejected():
    baseline = make_figure()
    other = FigureResult("figQ", "Other", xlabel="x", ylabel="y")
    with pytest.raises(ConfigError):
        compare_to_baseline(other, baseline)


def test_cli_baseline_roundtrip(tmp_path):
    import io

    from repro.cli import main

    path = tmp_path / "fig3.json"
    out = io.StringIO()
    assert main(["figure", "fig3", "--save-baseline", str(path)], out=out) == 0
    assert "baseline saved" in out.getvalue()
    out = io.StringIO()
    # Deterministic simulator: an immediate re-run matches exactly.
    assert (
        main(["figure", "fig3", "--compare-baseline", str(path)], out=out) == 0
    )
    assert "matches baseline" in out.getvalue()


# ---------------------------------------------------------------------------
# Nested-mapping comparison (kernel stats, metrics snapshots)
# ---------------------------------------------------------------------------

def test_flatten_numeric_dotted_keys():
    from repro.harness.regression import flatten_numeric

    flat = flatten_numeric({
        "kernel": {"events": 10, "nested": {"deep": 2.5}},
        "label": "ignored",
        "flag": True,
        "empty": None,
        "listy": [1, 2],
        "top": 7,
    })
    assert flat == {
        "kernel.events": 10,
        "kernel.nested.deep": 2.5,
        "top": 7,
    }


def test_compare_mappings_exact_by_default():
    from repro.harness.regression import compare_mappings

    base = {"kernel": {"events": 100, "pops": 40}}
    assert compare_mappings(dict(base), base) == []
    moved = {"kernel": {"events": 101, "pops": 40}}
    deviations = compare_mappings(moved, base, label="stats")
    assert len(deviations) == 1
    assert deviations[0].series == "stats.kernel.events"
    assert deviations[0].kind == "value"
    assert "100.0000 -> 101.0000" in deviations[0].describe()


def test_compare_mappings_tolerance_and_structure():
    from repro.harness.regression import compare_mappings

    base = {"a": 100, "gone": 1}
    current = {"a": 104, "new": 2}
    loose = compare_mappings(current, base, rtol=0.05)
    kinds = sorted(d.kind for d in loose)
    assert kinds == ["missing-point", "new-point"]  # a is within 5%
    strict = compare_mappings(current, base)
    assert sorted(d.kind for d in strict) == [
        "missing-point", "new-point", "value",
    ]
