"""Unit tests for the parallel sweep engine and its result cache."""

import json
import multiprocessing

import pytest

from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.errors import ConfigError, SimulationError
from repro.harness import figures
from repro.harness import sweep as sweep_mod
from repro.harness.experiment import MeasureWindow, normalized_microbench
from repro.harness.figures import Series
from repro.harness.sweep import (
    MODEL_VERSION,
    ResultCache,
    SweepEngine,
    SweepJob,
    SweepSpec,
    baseline_job,
    job_digest,
)
from repro.workloads.microbench import MicrobenchSpec

#: Small enough that one job simulates in ~10 ms.
TINY = MeasureWindow(warmup_us=2.0, measure_us=8.0)


def _job(threads=2, work=50, latency_us=1.0, **spec_kwargs) -> SweepJob:
    return SweepJob(
        config=SystemConfig(
            mechanism=AccessMechanism.PREFETCH,
            threads_per_core=threads,
            device=DeviceConfig(total_latency_us=latency_us),
        ),
        spec=MicrobenchSpec(work_count=work, **spec_kwargs),
        window=TINY,
    )


# ---------------------------------------------------------------------------
# Job validation and cache keys
# ---------------------------------------------------------------------------

def test_microbench_job_requires_spec():
    with pytest.raises(ConfigError):
        SweepJob(config=SystemConfig())


def test_application_job_takes_no_spec():
    with pytest.raises(ConfigError):
        SweepJob(
            config=SystemConfig(),
            app="bloom",
            spec=MicrobenchSpec(work_count=10),
        )


def test_job_digest_is_stable_and_input_sensitive():
    assert job_digest(_job()) == job_digest(_job())
    assert job_digest(_job()) != job_digest(_job(work=51))
    assert job_digest(_job()) != job_digest(_job(threads=3))
    # The working-set size is part of the identity (the baseline-cache
    # bug this PR fixes was exactly this field going missing).
    assert job_digest(_job()) != job_digest(_job(lines_per_thread=2048))


def test_job_digest_salt_and_label():
    assert job_digest(_job(), salt="a") != job_digest(_job(), salt="b")
    tagged = SweepJob(
        config=_job().config, spec=_job().spec, window=TINY, label=("fig3", 2)
    )
    assert job_digest(tagged) == job_digest(_job())  # label is bookkeeping


def test_baseline_job_keeps_consumed_spec_fields():
    job = _job(
        threads=8, work=120, latency_us=4.0,
        reads_per_batch=2, lines_per_thread=512,
    )
    base = baseline_job(job)
    assert base.config.cores == 1
    assert base.config.threads_per_core == 1
    assert base.config.mechanism is AccessMechanism.ON_DEMAND
    assert base.spec.work_count == 120
    assert base.spec.reads_per_batch == 2
    assert base.spec.lines_per_thread == 512


def test_baseline_job_is_device_latency_independent():
    # The DRAM baseline never touches the device, so a latency sweep
    # must share one baseline run instead of simulating three.
    keys = {
        job_digest(baseline_job(_job(latency_us=latency)))
        for latency in (1.0, 2.0, 4.0)
    }
    assert len(keys) == 1


# ---------------------------------------------------------------------------
# Execution: determinism, dedup, ordering
# ---------------------------------------------------------------------------

def test_serial_and_parallel_results_are_identical():
    jobs = [_job(threads=threads) for threads in (1, 2, 3, 4, 5)]
    serial = SweepEngine(jobs=1, use_cache=False).run(SweepSpec("s", jobs))
    parallel = SweepEngine(jobs=4, use_cache=False).run(SweepSpec("p", jobs))
    assert [o.payload for o in serial] == [o.payload for o in parallel]
    # Outcomes come back in submission order, not completion order.
    assert [o.job for o in serial] == jobs
    assert [o.job for o in parallel] == jobs


def test_identical_jobs_simulate_once():
    engine = SweepEngine(jobs=1, use_cache=False)
    outcomes = engine.run([_job(), _job(), _job()])
    assert engine.last_stats["jobs"] == 3
    assert engine.last_stats["unique"] == 1
    assert engine.last_stats["simulated"] == 1
    assert outcomes[0].payload == outcomes[1].payload == outcomes[2].payload


def test_engine_counters_accumulate(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    engine.run([_job()])
    engine.run([_job()])
    stats = engine.stats()
    assert stats["jobs"] == 2
    assert stats["simulated"] == 1
    assert stats["cache_hits"] == 1
    assert stats["cache_misses"] == 1
    assert engine.probes.latency("sweep-job-wall-ns").count == 1


# ---------------------------------------------------------------------------
# On-disk cache
# ---------------------------------------------------------------------------

def test_cache_hit_after_miss(tmp_path):
    jobs = [_job(threads=threads) for threads in (1, 2)]
    cold = SweepEngine(jobs=1, cache_dir=tmp_path)
    first = cold.run(jobs)
    assert cold.last_stats == dict(
        cold.last_stats, cache_hits=0, cache_misses=2, simulated=2
    )
    assert not any(outcome.cached for outcome in first)

    warm = SweepEngine(jobs=1, cache_dir=tmp_path)
    second = warm.run(jobs)
    assert warm.last_stats["cache_hits"] == 2
    assert warm.last_stats["simulated"] == 0
    assert all(outcome.cached for outcome in second)
    assert [o.payload for o in first] == [o.payload for o in second]


def test_cache_invalidated_by_model_version_salt(tmp_path):
    job = _job()
    SweepEngine(jobs=1, cache_dir=tmp_path, salt="model-v1").run([job])
    bumped = SweepEngine(jobs=1, cache_dir=tmp_path, salt="model-v2")
    bumped.run([job])
    assert bumped.last_stats["cache_misses"] == 1
    assert bumped.last_stats["simulated"] == 1
    unchanged = SweepEngine(jobs=1, cache_dir=tmp_path, salt="model-v1")
    unchanged.run([job])
    assert unchanged.last_stats["cache_hits"] == 1


def test_corrupt_cache_entry_degrades_to_miss(tmp_path):
    job = _job()
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    outcome = engine.run([job])[0]
    engine.cache.path(outcome.key).write_text("{not json")
    rerun = SweepEngine(jobs=1, cache_dir=tmp_path)
    again = rerun.run([job])[0]
    assert rerun.last_stats["simulated"] == 1
    assert again.payload == outcome.payload


def test_cache_entry_is_selfdescribing(tmp_path):
    job = _job(work=77)
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    outcome = engine.run([job])[0]
    entry = json.loads(engine.cache.path(outcome.key).read_text())
    assert entry["format"] == ResultCache.FORMAT
    assert entry["key"] == outcome.key
    assert entry["model_version"] == MODEL_VERSION
    assert entry["job"]["spec"]["work_count"] == 77
    assert entry["result"] == outcome.payload


def test_no_cache_engine_never_touches_disk(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path, use_cache=False)
    engine.run([_job()])
    assert engine.cache is None
    assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Worker failure, timeout, fallback
# ---------------------------------------------------------------------------

_REAL_EXECUTE = sweep_mod._execute_job


def _fail_in_worker(job, collect_metrics=False, check_invariants=False):
    """Raises inside pool workers, behaves normally in the parent."""
    if multiprocessing.current_process().name != "MainProcess":
        raise RuntimeError("injected worker failure")
    return _REAL_EXECUTE(job, collect_metrics, check_invariants)


def test_worker_failure_falls_back_in_process(monkeypatch):
    monkeypatch.setattr(sweep_mod, "_execute_job", _fail_in_worker)
    jobs = [_job(threads=threads) for threads in (1, 2)]
    engine = SweepEngine(jobs=2, use_cache=False, retries=1, timeout_s=60.0)
    outcomes = engine.run(jobs)
    assert engine.last_stats["fallbacks"] == 2
    assert engine.last_stats["retries"] == 2
    reference = SweepEngine(jobs=1, use_cache=False).run(jobs)
    assert [o.payload for o in outcomes] == [o.payload for o in reference]


def test_timeout_falls_back_in_process():
    jobs = [_job(threads=threads) for threads in (1, 2)]
    engine = SweepEngine(jobs=2, use_cache=False, retries=0, timeout_s=1e-6)
    outcomes = engine.run(jobs)
    assert engine.last_stats["fallbacks"] == 2
    reference = SweepEngine(jobs=1, use_cache=False).run(jobs)
    assert [o.payload for o in outcomes] == [o.payload for o in reference]


# ---------------------------------------------------------------------------
# Normalization through the figure helpers
# ---------------------------------------------------------------------------

def test_sweep_normalization_matches_direct_path():
    job = _job(threads=4, work=80)
    line = Series("check")
    figures._run_normalized_microbench(
        "mini", [(line, 4, job)], SweepEngine(jobs=1, use_cache=False)
    )
    direct, _ = normalized_microbench(job.config, job.spec, TINY)
    assert line.y_at(4) == direct


def test_zero_ipc_baseline_raises_simulation_error_in_sweep():
    job = SweepJob(
        config=SystemConfig(mechanism=AccessMechanism.ON_DEMAND),
        spec=MicrobenchSpec(work_count=0),
        window=TINY,
    )
    line = Series("zero")
    with pytest.raises(SimulationError, match="zero work IPC"):
        figures._run_normalized_microbench(
            "zero", [(line, 1, job)], SweepEngine(jobs=1, use_cache=False)
        )


def test_engine_rejects_bad_configuration():
    with pytest.raises(ConfigError):
        SweepEngine(jobs=0)
    with pytest.raises(ConfigError):
        SweepEngine(retries=-1)
    with pytest.raises(ConfigError):
        SweepEngine(timeout_s=0.0)
    with pytest.raises(ConfigError):
        SweepEngine(lease_s=-1.0)


def test_from_env_reads_environment():
    engine = SweepEngine.from_env(
        {"REPRO_SWEEP_JOBS": "3", "REPRO_CACHE_DIR": "/tmp/x",
         "REPRO_NO_CACHE": "1"}
    )
    assert engine.jobs == 3
    assert engine.cache is None
    cached = SweepEngine.from_env({"REPRO_CACHE_DIR": "/tmp/x"})
    assert cached.jobs == 1
    assert str(cached.cache.root) == "/tmp/x"


def test_from_env_reads_failure_tuning():
    engine = SweepEngine.from_env(
        {"REPRO_NO_CACHE": "1", "REPRO_SWEEP_TIMEOUT_S": "12.5",
         "REPRO_SWEEP_RETRIES": "3"}
    )
    assert engine.timeout_s == 12.5
    assert engine.retries == 3
    defaults = SweepEngine.from_env({"REPRO_NO_CACHE": "1"})
    assert defaults.timeout_s == 900.0
    assert defaults.retries == 1


@pytest.mark.parametrize("variable,value", [
    ("REPRO_SWEEP_TIMEOUT_S", "soon"),
    ("REPRO_SWEEP_RETRIES", "2.5"),
    ("REPRO_SWEEP_RETRIES", "many"),
])
def test_from_env_rejects_malformed_failure_tuning(variable, value):
    with pytest.raises(ConfigError, match=variable):
        SweepEngine.from_env({"REPRO_NO_CACHE": "1", variable: value})


# ---------------------------------------------------------------------------
# Kernel stats, invariants, progress telemetry
# ---------------------------------------------------------------------------

def test_payload_carries_worker_kernel_stats():
    outcome = SweepEngine(jobs=1, use_cache=False).run([_job()])[0]
    stats = outcome.payload["kernel_stats"]
    assert stats["simulators"] >= 1
    assert stats["events_fired"] > 0
    assert stats["heap_pushes"] >= stats["heap_pops"]


def test_summary_merges_kernel_stats_across_workers():
    jobs = [_job(threads=threads) for threads in (1, 2, 3)]
    engine = SweepEngine(jobs=2, use_cache=False)
    outcomes = engine.run(jobs)
    merged = engine.last_stats["kernel_stats"]
    for stat in ("events_fired", "process_resumes", "simulators"):
        assert merged[stat] == sum(
            outcome.payload["kernel_stats"][stat] for outcome in outcomes
        )


def test_cache_served_sweep_merges_no_kernel_stats(tmp_path):
    jobs = [_job()]
    SweepEngine(jobs=1, cache_dir=tmp_path).run(jobs)
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    outcomes = engine.run(jobs)
    assert engine.last_stats["simulated"] == 0
    # Nothing ran here, so no throughput to report -- but the cached
    # payload still carries the stats of the run that produced it.
    assert engine.last_stats["kernel_stats"] == {}
    assert outcomes[0].payload["kernel_stats"]["events_fired"] > 0


def test_check_invariants_uses_a_distinct_cache_namespace(tmp_path):
    jobs = [_job()]
    SweepEngine(jobs=1, cache_dir=tmp_path).run(jobs)
    checked = SweepEngine(jobs=1, cache_dir=tmp_path, check_invariants=True)
    outcomes = checked.run(jobs)
    # A monitored run is never served from unmonitored cache entries
    # (payload kernel counters differ), but its figures must agree.
    assert checked.last_stats["cache_hits"] == 0
    assert checked.last_stats["simulated"] == 1
    plain = SweepEngine(jobs=1, use_cache=False).run(jobs)
    assert outcomes[0].payload["work_ipc"] == plain[0].payload["work_ipc"]
    assert outcomes[0].payload["ticks"] == plain[0].payload["ticks"]


class _RecordingProgress:
    def __init__(self):
        self.begun = None
        self.done = 0
        self.finished = None

    def begin(self, name, total, cache_hits, workers):
        self.begun = {"name": name, "total": total,
                      "cache_hits": cache_hits, "workers": workers}

    def job_done(self, wall_s, active=0):
        self.done += 1

    def heartbeat(self, active):
        pass

    def finish(self, stats):
        self.finished = stats


@pytest.mark.parametrize("workers", [1, 2])
def test_progress_hooks_fire_per_job(workers):
    jobs = [_job(threads=threads) for threads in (1, 2, 3)]
    progress = _RecordingProgress()
    engine = SweepEngine(jobs=workers, use_cache=False, progress=progress)
    engine.run(SweepSpec("prog", jobs))
    assert progress.begun == {
        "name": "prog", "total": 3, "cache_hits": 0, "workers": workers
    }
    assert progress.done == 3
    assert progress.finished is engine.last_stats
