"""Unit tests for the experiment harness and baseline caching."""

import pytest

from repro.config import AccessMechanism, BackingStore, DeviceConfig, SystemConfig
from repro.harness.applications import (
    MicrobenchAppParams,
    default_params,
    normalized_application,
    run_application,
)
from repro.harness.experiment import (
    BaselineCache,
    MeasureWindow,
    microbench_baseline,
    normalized_microbench,
    run_microbench,
)
from repro.workloads.microbench import MicrobenchSpec

WINDOW = MeasureWindow(warmup_us=10.0, measure_us=30.0)


def test_measure_window_ticks():
    window = MeasureWindow(warmup_us=10.0, measure_us=30.0)
    assert window.warmup_ticks == 10_000_000
    assert window.measure_ticks == 30_000_000


def test_run_microbench_produces_stats_and_report():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH, threads_per_core=4)
    result = run_microbench(config, MicrobenchSpec(work_count=100), WINDOW)
    assert result.work_ipc > 0
    assert result.stats.accesses > 0
    assert "lfb_max_per_core" in result.report


def test_baseline_is_single_thread_dram():
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH, cores=4, threads_per_core=8
    )
    baseline = microbench_baseline(config, MicrobenchSpec(work_count=100), WINDOW)
    assert baseline.config.cores == 1
    assert baseline.config.threads_per_core == 1
    assert baseline.config.backing is BackingStore.DRAM
    assert baseline.config.mechanism is AccessMechanism.ON_DEMAND


def test_baseline_cache_reuses_runs():
    cache = BaselineCache()
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH)
    spec = MicrobenchSpec(work_count=100)
    first = cache.get(config, spec, WINDOW)
    second = cache.get(config.replace(threads_per_core=12), spec, WINDOW)
    assert first is second  # same baseline key
    third = cache.get(config, MicrobenchSpec(work_count=200), WINDOW)
    assert third is not first  # different work-count, different baseline


def test_baseline_cache_distinguishes_lines_per_thread():
    """Regression: the memo key once dropped lines_per_thread, so a
    working-set sweep normalized against the wrong DRAM baseline."""
    cache = BaselineCache()
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH)
    tiny = MeasureWindow(warmup_us=2.0, measure_us=8.0)
    small = cache.get(
        config, MicrobenchSpec(work_count=50, lines_per_thread=64), tiny
    )
    large = cache.get(
        config, MicrobenchSpec(work_count=50, lines_per_thread=2048), tiny
    )
    assert small is not large
    assert small.spec.lines_per_thread == 64
    assert large.spec.lines_per_thread == 2048
    # The distinction matters: 64 lines live in the L1, 2048 thrash it.
    assert small.work_ipc != large.work_ipc


def test_zero_ipc_baseline_raises_simulation_error(monkeypatch):
    from repro.errors import SimulationError
    from repro.harness import experiment

    class _Dead:
        work_ipc = 0.0

    monkeypatch.setattr(
        experiment, "run_microbench",
        lambda config, spec, window, platform=None, **kwargs: _Dead(),
    )
    config = SystemConfig(mechanism=AccessMechanism.ON_DEMAND)
    with pytest.raises(SimulationError) as excinfo:
        experiment.normalized_microbench(
            config, MicrobenchSpec(work_count=7), WINDOW
        )
    message = str(excinfo.value)
    assert "zero work IPC" in message
    assert config.describe() in message
    assert "work_count=7" in message


def test_baseline_matches_mlp():
    cache = BaselineCache()
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH)
    mlp1 = cache.get(config, MicrobenchSpec(work_count=100), WINDOW)
    mlp4 = cache.get(
        config, MicrobenchSpec(work_count=100, reads_per_batch=4), WINDOW
    )
    assert mlp1 is not mlp4
    assert mlp4.spec.reads_per_batch == 4


def test_normalized_microbench_is_ratio():
    config = SystemConfig(
        mechanism=AccessMechanism.ON_DEMAND,
        device=DeviceConfig(total_latency_us=1.0),
    )
    spec = MicrobenchSpec(work_count=100)
    value, result = normalized_microbench(config, spec, WINDOW)
    baseline = microbench_baseline(config, spec, WINDOW)
    assert value == pytest.approx(result.work_ipc / baseline.work_ipc)
    assert 0 < value < 1


def test_default_params_for_every_application():
    for name in ("bloom", "memcached", "bfs", "microbench-4read"):
        assert default_params(name) is not None
    with pytest.raises(Exception):
        default_params("nope")


def test_run_application_counts_operations():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH, threads_per_core=2)
    params = MicrobenchAppParams(work_count=100, queries_per_thread=10)
    run = run_application(config, "microbench-4read", params)
    assert run.operations == 2 * 10
    assert run.ticks > 0
    assert run.ticks_per_operation == run.ticks / 20


def test_normalized_application_scales_with_threads():
    params = MicrobenchAppParams(work_count=100, queries_per_thread=12)
    slow, _ = normalized_application(
        SystemConfig(mechanism=AccessMechanism.PREFETCH, threads_per_core=1),
        "microbench-4read",
        params,
    )
    fast, _ = normalized_application(
        SystemConfig(mechanism=AccessMechanism.PREFETCH, threads_per_core=3),
        "microbench-4read",
        params,
    )
    assert fast > slow


def test_access_latency_statistics_recorded():
    from repro.config import DeviceConfig

    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        threads_per_core=4,
        device=DeviceConfig(total_latency_us=2.0),
    )
    result = run_microbench(config, MicrobenchSpec(work_count=100), WINDOW)
    stats = result.report["access_latency_ns"]
    assert stats is not None
    assert stats["count"] > 50
    # Thread-visible latency is at least the device latency.
    assert stats["p50"] >= 1990
    assert stats["max"] >= stats["p50"] >= 0


def test_access_latency_on_demand_equals_device_latency():
    from repro.config import DeviceConfig

    config = SystemConfig(
        mechanism=AccessMechanism.ON_DEMAND,
        threads_per_core=1,
        device=DeviceConfig(total_latency_us=1.0),
    )
    result = run_microbench(config, MicrobenchSpec(work_count=100), WINDOW)
    stats = result.report["access_latency_ns"]
    assert abs(stats["p50"] - 1000) < 30
