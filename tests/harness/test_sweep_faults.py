"""Fault-injection suite for the sweep engine's failure paths.

Every scenario the worker-failure machinery claims to survive is
exercised here against the real multi-process execution path: hanging
workers (killed and replaced), crashing workers (retried, then executed
in-process), deterministically failing jobs (structured per-job
failures that never poison neighbours), spurious queue-wait timeouts
(the deadline runs from the observed job start, not submission), and a
mid-sweep interrupt followed by a bit-for-bit identical resume.

The injected faults key off ``multiprocessing.current_process().name``:
engine workers are forked children (so they inherit the monkeypatched
``sweep_mod._execute_job``), while the parent's in-process fallback
runs in ``MainProcess`` and is spared -- exactly the asymmetry a real
worker-environment fault has.
"""

import multiprocessing
import time

import pytest

from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.harness import sweep as sweep_mod
from repro.harness.coordinator import DONE, FAILED, WorkQueue
from repro.harness.experiment import MeasureWindow
from repro.harness.sweep import SweepEngine, SweepJob, SweepSpec
from repro.workloads.microbench import MicrobenchSpec

TINY = MeasureWindow(warmup_us=2.0, measure_us=8.0)

#: ``work_count`` marking the job a fault is injected into.
SENTINEL = 7777

_REAL_EXECUTE = sweep_mod._execute_job


def _job(work) -> SweepJob:
    return SweepJob(
        config=SystemConfig(
            mechanism=AccessMechanism.PREFETCH,
            threads_per_core=2,
            device=DeviceConfig(total_latency_us=1.0),
        ),
        spec=MicrobenchSpec(work_count=work),
        window=TINY,
    )


def _in_worker() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


def _fake_payload(job) -> dict:
    return {
        "kind": "microbench",
        "work": job.spec.work_count,
        "proc": multiprocessing.current_process().name,
    }


def _worker_index(worker: str):
    """The N of an engine worker named ``...-wN`` (None otherwise)."""
    head, sep, tail = worker.rpartition("-w")
    if not sep or not tail.isdigit():
        return None
    return int(tail)


# ---------------------------------------------------------------------------
# Hanging workers: killed, replaced, concurrency restored
# ---------------------------------------------------------------------------

def test_hung_worker_is_killed_and_replaced(tmp_path, monkeypatch):
    def _hang_on_sentinel(job, collect_metrics, check_invariants):
        if job.spec.work_count == SENTINEL and _in_worker():
            time.sleep(600.0)
        time.sleep(0.06)
        return _fake_payload(job)

    monkeypatch.setattr(sweep_mod, "_execute_job", _hang_on_sentinel)
    jobs = [_job(SENTINEL)] + [_job(work) for work in range(16)]
    engine = SweepEngine(
        jobs=2, retries=0, timeout_s=0.4, use_cache=False,
        queue_dir=tmp_path / "q",
    )
    outcomes = engine.run(SweepSpec(name="hang", jobs=jobs))

    assert [outcome.payload["work"] for outcome in outcomes] == (
        [SENTINEL] + list(range(16))
    )
    stats = engine.last_stats
    assert stats["failed"] == 0
    assert stats["worker_respawns"] >= 1
    assert stats["fallbacks"] >= 1  # the sentinel ran in-process

    # The replacement worker actually drained jobs: some done record
    # names a worker index beyond the two launched at start -- the
    # hung slot was restored, not leaked.
    [queue] = [WorkQueue.attach(path) for path in (tmp_path / "q").iterdir()
               if (path / "manifest.json").exists()]
    indices = {
        _worker_index(queue.done_record(key)["worker"])
        for key in queue.order
    }
    assert any(index is not None and index >= 2 for index in indices)
    assert queue.counts()[DONE] == len(jobs)


# ---------------------------------------------------------------------------
# Crashing workers: retried, then executed in-process
# ---------------------------------------------------------------------------

def test_crashing_workers_never_lose_jobs(monkeypatch):
    def _crash_in_worker(job, collect_metrics, check_invariants):
        if _in_worker():
            import os

            os._exit(5)
        return _fake_payload(job)

    monkeypatch.setattr(sweep_mod, "_execute_job", _crash_in_worker)
    jobs = [_job(work) for work in range(3)]
    engine = SweepEngine(jobs=2, retries=1, timeout_s=60.0, use_cache=False)
    outcomes = engine.run(SweepSpec(name="crash", jobs=jobs))

    assert [outcome.payload["work"] for outcome in outcomes] == [0, 1, 2]
    # Every job ended up in the parent (fallback or emergency drain).
    assert all("MainProcess" in outcome.payload["proc"]
               or outcome.payload["proc"] == "MainProcess"
               for outcome in outcomes)
    stats = engine.last_stats
    assert stats["failed"] == 0
    assert stats["fallbacks"] + stats["retries"] >= len(jobs)


# ---------------------------------------------------------------------------
# Deterministically failing jobs: structured failure, neighbours intact
# ---------------------------------------------------------------------------

def test_failing_job_reports_structured_failure(tmp_path, monkeypatch):
    def _fail_on_sentinel(job, collect_metrics, check_invariants):
        if job.spec.work_count == SENTINEL:
            raise ValueError("injected deterministic fault")
        return _fake_payload(job)

    monkeypatch.setattr(sweep_mod, "_execute_job", _fail_on_sentinel)
    jobs = [_job(0), _job(SENTINEL), _job(1)]
    engine = SweepEngine(
        jobs=2, retries=1, timeout_s=60.0, use_cache=False,
        queue_dir=tmp_path / "q",
    )
    outcomes = engine.run(SweepSpec(name="fail", jobs=jobs))

    good = [outcomes[0], outcomes[2]]
    bad = outcomes[1]
    assert not any(outcome.failed for outcome in good)
    assert [outcome.payload["work"] for outcome in good] == [0, 1]
    assert bad.failed
    assert "ValueError: injected deterministic fault" in bad.error
    assert bad.payload["kind"] == "failure"

    stats = engine.last_stats
    assert stats["failed"] == 1
    assert stats["failures"] == {bad.key: bad.error}
    assert stats["queue"]["counts"][FAILED] == 1

    # Completed results are durable; the failure is a queue record.
    [queue] = [WorkQueue.attach(path) for path in (tmp_path / "q").iterdir()
               if (path / "manifest.json").exists()]
    assert queue.state(bad.key) == FAILED
    assert queue.failure(bad.key)["error_type"] == "ValueError"
    for outcome in good:
        assert queue.done_record(outcome.key)["payload"] == outcome.payload


def test_failing_job_on_the_serial_path(monkeypatch):
    def _fail_on_sentinel(job, collect_metrics, check_invariants):
        if job.spec.work_count == SENTINEL:
            raise ValueError("serial fault")
        return _fake_payload(job)

    monkeypatch.setattr(sweep_mod, "_execute_job", _fail_on_sentinel)
    engine = SweepEngine(jobs=1, use_cache=False)
    outcomes = engine.run(
        SweepSpec(name="serial-fail", jobs=[_job(0), _job(SENTINEL)])
    )
    assert not outcomes[0].failed
    assert outcomes[1].failed
    assert engine.last_stats["failed"] == 1


# ---------------------------------------------------------------------------
# Queue-wait is not execution time: no spurious timeouts
# ---------------------------------------------------------------------------

def test_queued_jobs_do_not_time_out_waiting_for_a_slot(monkeypatch):
    def _slow(job, collect_metrics, check_invariants):
        time.sleep(0.15)
        return _fake_payload(job)

    monkeypatch.setattr(sweep_mod, "_execute_job", _slow)
    # 8 jobs over 2 slots: the tail of the queue waits ~0.45 s for a
    # slot, well past the 0.3 s per-job deadline.  The deadline runs
    # from each job's observed start, so nothing times out.
    jobs = [_job(work) for work in range(8)]
    engine = SweepEngine(jobs=2, retries=0, timeout_s=0.3, use_cache=False)
    outcomes = engine.run(SweepSpec(name="queue-wait", jobs=jobs))

    assert [outcome.payload["work"] for outcome in outcomes] == list(range(8))
    stats = engine.last_stats
    assert stats["retries"] == 0
    assert stats["fallbacks"] == 0
    assert stats["worker_respawns"] == 0
    assert stats["failed"] == 0


# ---------------------------------------------------------------------------
# Interrupt and resume: bit-for-bit identical outcomes
# ---------------------------------------------------------------------------

class _InterruptAfter:
    """Progress hook that raises KeyboardInterrupt mid-sweep."""

    def __init__(self, after: int) -> None:
        self.after = after
        self.done = 0

    def begin(self, name, total, cache_hits, workers) -> None:
        pass

    def job_done(self, wall_s, active=0) -> None:
        self.done += 1
        if self.done >= self.after:
            raise KeyboardInterrupt

    def heartbeat(self, active) -> None:
        pass

    def finish(self, stats) -> None:
        pass


def test_interrupted_sweep_resumes_bit_for_bit(tmp_path):
    jobs = [_job(work) for work in (10, 20, 30, 40, 50, 60)]
    reference = SweepEngine(jobs=2, use_cache=False)
    expected = reference.run(SweepSpec(name="resume", jobs=list(jobs)))

    queue_dir = tmp_path / "q"
    interrupted = SweepEngine(
        jobs=2, use_cache=False, queue_dir=queue_dir,
        progress=_InterruptAfter(after=3),
    )
    with pytest.raises(KeyboardInterrupt):
        interrupted.run(SweepSpec(name="resume", jobs=list(jobs)))
    assert interrupted.last_stats["interrupted"] is True
    partial = interrupted.last_stats["queue"]["counts"]
    assert 0 < partial[DONE] < len(jobs)

    resumed = SweepEngine(jobs=2, use_cache=False, queue_dir=queue_dir)
    outcomes = resumed.run(SweepSpec(name="resume", jobs=list(jobs)))

    assert [outcome.payload for outcome in outcomes] == [
        outcome.payload for outcome in expected
    ]
    assert resumed.last_stats["failed"] == 0
    # Each job executed exactly once across the interrupt+resume pair,
    # so the experiment's kernel totals match an uninterrupted run's.
    assert (resumed.last_stats["kernel_stats"]
            == reference.last_stats["kernel_stats"])
    assert resumed.last_stats["queue"]["counts"][DONE] == len(jobs)

    # A second resume is a pure queue replay: nothing simulates.
    replay = SweepEngine(jobs=2, use_cache=False, queue_dir=queue_dir)
    replay_outcomes = replay.run(SweepSpec(name="resume", jobs=list(jobs)))
    assert replay.last_stats["simulated"] == 0
    assert replay.last_stats["queue_served"] == len(jobs)
    assert [outcome.payload for outcome in replay_outcomes] == [
        outcome.payload for outcome in expected
    ]
