"""Tests for the live sweep-progress reporter.

The reporter only observes completions, so these tests drive it with a
fake clock and an in-memory stream -- no sleeping, no terminals.
"""

import io

import pytest

from repro.harness.progress import SweepProgress


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_progress():
    clock = FakeClock()
    stream = io.StringIO()
    progress = SweepProgress(stream=stream, min_interval_s=0.0, clock=clock)
    return progress, clock, stream


def test_serial_eta_uses_observed_concurrency():
    # Regression: eta_s() divided the EWMA by the *configured* worker
    # count even on the serial in-process path (which reports active=0
    # on every completion), so ``--jobs 8`` made a serial sweep's ETA
    # eight times too optimistic.
    progress, clock, _ = make_progress()
    progress.begin("fig", total=10, cache_hits=0, workers=8)
    progress.job_done(2.0, active=0)  # serial path: nothing else active
    # 9 jobs remain at ~2 s each with concurrency 1, not 8.
    assert progress.eta_s() == pytest.approx(2.0 * 9)


def test_pool_eta_divides_by_active_workers():
    progress, clock, _ = make_progress()
    progress.begin("fig", total=9, cache_hits=0, workers=4)
    progress.job_done(2.0, active=3)  # pool path: 3 still busy
    # Observed concurrency is active+1 = 4 -> ETA spreads the work.
    assert progress.eta_s() == pytest.approx(2.0 * 8 / 4)


def test_eta_never_exceeds_configured_workers():
    progress, clock, _ = make_progress()
    progress.begin("fig", total=4, cache_hits=0, workers=2)
    # A stale heartbeat claiming more concurrency than configured must
    # not make the ETA optimistic beyond the pool size.
    progress.job_done(1.0, active=7)
    assert progress.eta_s() == pytest.approx(1.0 * 3 / 2)


def test_eta_none_before_first_sample_and_after_done():
    progress, clock, _ = make_progress()
    progress.begin("fig", total=1, cache_hits=0, workers=1)
    assert progress.eta_s() is None
    progress.job_done(1.0, active=0)
    assert progress.eta_s() is None  # nothing remaining


def test_ewma_smooths_wall_samples():
    progress, clock, _ = make_progress()
    progress.begin("fig", total=10, cache_hits=0, workers=1)
    progress.job_done(1.0, active=0)
    progress.job_done(2.0, active=0)
    # EWMA after 1.0 then 2.0: 1.0 + 0.2 * (2.0 - 1.0) = 1.2.
    assert progress.eta_s() == pytest.approx(1.2 * 8)


def test_observed_concurrency_resets_per_sweep():
    progress, clock, stream = make_progress()
    progress.begin("a", total=4, cache_hits=0, workers=4)
    progress.job_done(1.0, active=3)
    progress.finish({})
    # The next sweep runs serially; yesterday's concurrency must not
    # leak into its ETA.
    progress.begin("b", total=4, cache_hits=0, workers=4)
    progress.job_done(1.0, active=0)
    assert progress.eta_s() == pytest.approx(1.0 * 3)


def test_renders_progress_lines_to_stream():
    progress, clock, stream = make_progress()
    progress.begin("fig3", total=2, cache_hits=5, workers=1)
    progress.job_done(1.0, active=0)
    progress.job_done(1.0, active=0)
    progress.finish({"simulated": 2, "cache_hits": 5, "wall_s": 2.0})
    text = stream.getvalue()
    assert "[fig3]" in text
    assert "5 cache hits" in text
    assert "done: 2 simulated, 5 cached" in text
