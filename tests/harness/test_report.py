"""Unit tests for figure containers and report rendering."""

import pytest

from repro.harness.figures import FigureResult, Series
from repro.harness.report import render_summary, render_table, to_csv


def sample_figure():
    figure = FigureResult("figX", "Sample", xlabel="threads", ylabel="norm IPC")
    a = figure.new_series("1us")
    a.add(1, 0.1)
    a.add(2, 0.25)
    b = figure.new_series("4us")
    b.add(1, 0.05)
    b.add(4, 0.4)
    return figure


def test_series_accessors():
    series = Series("s")
    series.add(1, 0.5)
    series.add(2, 0.7)
    assert series.ys() == [0.5, 0.7]
    assert series.y_at(2) == 0.7
    assert series.peak() == 0.7
    with pytest.raises(KeyError):
        series.y_at(99)


def test_figure_get_by_label():
    figure = sample_figure()
    assert figure.get("1us").label == "1us"
    with pytest.raises(KeyError):
        figure.get("nope")


def test_render_table_contains_all_points():
    text = render_table(sample_figure())
    assert "figX" in text and "threads" in text
    assert "0.100" in text and "0.250" in text and "0.400" in text
    # Missing (series, x) combinations render as '-'.
    assert "-" in text
    lines = text.splitlines()
    # Header + rule + one row per distinct x (1, 2, 4) + title lines.
    assert len([line for line in lines if line and line[0] != " "][0]) > 0


def test_to_csv_roundtrips_values():
    csv = to_csv(sample_figure())
    rows = csv.strip().splitlines()
    assert rows[0] == "figure,series,x,y"
    assert "figX,1us,1,0.100000" in csv
    assert len(rows) == 1 + 4


def test_render_summary_reports_peaks():
    text = render_summary([sample_figure()])
    assert "peak  0.250 at x=2" in text
    assert "peak  0.400 at x=4" in text


def test_render_chart_places_markers_and_legend():
    from repro.harness.report import render_chart

    text = render_chart(sample_figure(), width=20, height=8)
    assert "o = 1us" in text and "x = 4us" in text
    assert "o" in text.splitlines()[-5]  # markers landed on the grid
    assert "(threads)" in text


def test_render_chart_empty_figure():
    from repro.harness.report import render_chart

    empty = FigureResult("figY", "Empty", xlabel="x", ylabel="y")
    assert "(no data)" in render_chart(empty)
