"""Unit tests for figure containers (Series / FigureResult)."""

import pytest

from repro.harness.figures import FigureResult, Series


def test_y_at_exact_integer_x():
    series = Series("threads")
    series.add(1, 0.1)
    series.add(2, 0.2)
    assert series.y_at(2) == 0.2


def test_y_at_tolerates_float_representation_error():
    """Regression: `==` on float x-coordinates silently missed points
    (0.1 + 0.2 != 0.3); latency-valued axes need tolerant lookup."""
    series = Series("latency-us")
    series.add(0.1 + 0.2, 1.5)
    assert (0.1 + 0.2) != 0.3
    assert series.y_at(0.3) == 1.5
    assert series.y_at(0.1 + 0.2) == 1.5


def test_y_at_missing_point_still_raises():
    series = Series("threads")
    series.add(1.0, 0.1)
    with pytest.raises(KeyError):
        series.y_at(2.0)


def test_y_at_does_not_match_distinct_close_points():
    series = Series("work")
    series.add(100.0, 0.4)
    series.add(101.0, 0.5)
    assert series.y_at(100.0) == 0.4
    assert series.y_at(101.0) == 0.5


def test_series_peak_and_ys():
    series = Series("line")
    series.add(1, 0.25)
    series.add(2, 0.75)
    assert series.ys() == [0.25, 0.75]
    assert series.peak() == 0.75


def test_figure_result_lookup():
    figure = FigureResult("figX", "title", "x", "y")
    line = figure.new_series("1us")
    assert figure.get("1us") is line
    with pytest.raises(KeyError):
        figure.get("2us")
