"""Unit tests for figure containers (Series / FigureResult)."""

import pytest

from repro.harness.figures import FigureResult, Series


def test_y_at_exact_integer_x():
    series = Series("threads")
    series.add(1, 0.1)
    series.add(2, 0.2)
    assert series.y_at(2) == 0.2


def test_y_at_tolerates_float_representation_error():
    """Regression: `==` on float x-coordinates silently missed points
    (0.1 + 0.2 != 0.3); latency-valued axes need tolerant lookup."""
    series = Series("latency-us")
    series.add(0.1 + 0.2, 1.5)
    assert (0.1 + 0.2) != 0.3
    assert series.y_at(0.3) == 1.5
    assert series.y_at(0.1 + 0.2) == 1.5


def test_y_at_missing_point_still_raises():
    series = Series("threads")
    series.add(1.0, 0.1)
    with pytest.raises(KeyError):
        series.y_at(2.0)


def test_y_at_does_not_match_distinct_close_points():
    series = Series("work")
    series.add(100.0, 0.4)
    series.add(101.0, 0.5)
    assert series.y_at(100.0) == 0.4
    assert series.y_at(101.0) == 0.5


def test_series_peak_and_ys():
    series = Series("line")
    series.add(1, 0.25)
    series.add(2, 0.75)
    assert series.ys() == [0.25, 0.75]
    assert series.peak() == 0.75


def test_figure_result_lookup():
    figure = FigureResult("figX", "title", "x", "y")
    line = figure.new_series("1us")
    assert figure.get("1us") is line
    with pytest.raises(KeyError):
        figure.get("2us")


def _slo_fixture(rule_p99: float, under_p99: float) -> FigureResult:
    figure = FigureResult("figA_slo", "t", "load", "us")
    for policy, p99 in (("rule-sized", rule_p99), ("under-rule", under_p99)):
        for quantile, y in (("p50", 1.0), ("p99", p99), ("p999", 2 * p99)):
            line = figure.new_series(f"{policy}/1core/{quantile}")
            line.add(0.1, y / 2)
            line.add(0.3, y)
    return figure


def test_queue_rule_report_holds_when_rule_sized_wins():
    from repro.harness.figures import queue_rule_report

    report = queue_rule_report(_slo_fixture(rule_p99=30.0, under_p99=70.0))
    assert report["holds"] is True
    entry = report["per_cores"][1]
    assert entry["offered_per_core_us"] == 0.3
    assert entry["rule-sized"] == 30.0
    assert entry["under-rule"] == 70.0


def test_queue_rule_report_flags_violation():
    from repro.harness.figures import queue_rule_report

    report = queue_rule_report(_slo_fixture(rule_p99=80.0, under_p99=70.0))
    assert report["holds"] is False
    assert report["per_cores"][1]["holds"] is False


def test_queue_rule_report_tolerates_ties():
    from repro.harness.figures import queue_rule_report

    # A light-load tie (the ring never fills) still counts as holding.
    report = queue_rule_report(_slo_fixture(rule_p99=10.0, under_p99=10.0))
    assert report["holds"] is True


def test_figA_slo_registered():
    from repro.harness.figures import ALL_FIGURES, figA_slo

    assert ALL_FIGURES["figA_slo"] is figA_slo
