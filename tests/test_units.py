"""Unit tests for time/frequency unit helpers."""

import pytest

from repro.units import (
    Frequency,
    NS,
    US,
    gigahertz,
    ms,
    ns,
    ps,
    seconds,
    to_ns,
    to_seconds,
    to_us,
    transfer_ticks,
    us,
)


def test_conversions_are_integers():
    assert ns(1) == NS
    assert us(1) == US
    assert ns(1.5) == 1500
    assert ms(2) == 2 * 10**9
    assert seconds(1e-6) == US
    assert ps(1.4) == 1


def test_roundtrips():
    assert to_ns(ns(123.0)) == 123.0
    assert to_us(us(7.0)) == 7.0
    assert to_seconds(seconds(2)) == 2.0


def test_frequency_period_rounding():
    clock = gigahertz(2.3)
    # 434.78 ps rounds to 435 ps.
    assert clock.period_ps == 435
    assert gigahertz(1.0).period_ps == 1000


def test_cycles_conversion():
    clock = gigahertz(1.0)
    assert clock.cycles(10) == ns(10)
    assert clock.cycles(2.5) == 2500
    assert clock.to_cycles(ns(10)) == 10.0


def test_frequency_validation():
    with pytest.raises(ValueError):
        Frequency(0)
    with pytest.raises(ValueError):
        Frequency(-1)


def test_transfer_ticks():
    # 4 GB/s: one byte takes 0.25 ns = 250 ps.
    assert transfer_ticks(4, 4e9) == 1000
    assert transfer_ticks(0, 4e9) == 0
    # Non-empty transfers always take at least one tick.
    assert transfer_ticks(1, 1e15) == 1


def test_extreme_frequency_period_floor():
    assert Frequency(1e13).period_ps == 1
